package rbio

import (
	"context"
	"errors"
	"sync"
	"time"

	"socrates/internal/socerr"
)

// Client wraps a Conn with protocol-version negotiation, transient-failure
// retry, and QoS latency tracking for best-replica selection.
type Client struct {
	conn     Conn
	retries  int
	backoff  time.Duration
	mu       sync.Mutex
	ver      uint16  // negotiated protocol version; 0 = not yet negotiated
	ewma     float64 // nanoseconds; 0 = no samples yet
	failures int     // consecutive failures (reset on success)
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetries sets the number of attempts for retryable failures.
func WithRetries(n int) ClientOption { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base backoff between retries (linear).
func WithBackoff(d time.Duration) ClientOption { return func(c *Client) { c.backoff = d } }

// NewClient wraps conn. The protocol version is negotiated lazily with a
// hello exchange before the first frame goes out: the client sends a
// fixed v1-layout MsgPing — a frame every protocol version decodes — and
// reads the server's build version from the response header, whose layout
// is identical in all versions. It then speaks min(Version, server's).
//
// A v2-layout frame is therefore never put on the wire toward a peer
// that has not proven it decodes v2. This matters because the v2 trace
// header sits mid-frame: a genuine v1 build's strict decoder would
// misparse every later field and drop the connection before it could
// answer StatusVersion, so downgrade-on-rejection alone cannot provide
// backward compatibility.
func NewClient(conn Conn, opts ...ClientOption) *Client {
	c := &Client{conn: conn, retries: 5, backoff: 500 * time.Microsecond}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ProtocolVersion reports the negotiated protocol version, or 0 before
// the first hello exchange completes.
func (c *Client) ProtocolVersion() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ver
}

// negotiate returns the protocol version to stamp on the next frame,
// running the hello exchange on first use. If the hello fails (peer down,
// ctx expired) it returns VersionMin — safe on any wire — and leaves the
// client unnegotiated so a later call re-probes.
func (c *Client) negotiate(ctx context.Context) uint16 {
	c.mu.Lock()
	v := c.ver
	c.mu.Unlock()
	if v != 0 {
		return v
	}
	// The hello's status is irrelevant (even an error reply carries the
	// server's version); only a transport failure aborts negotiation.
	resp, err := c.conn.Call(ctx, &Request{Version: VersionMin, Type: MsgPing})
	if err != nil || resp.Version < VersionMin {
		return VersionMin
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ver == 0 {
		c.ver = min(Version, resp.Version)
	}
	return c.ver
}

// stamp prepares req for the wire at the negotiated version: v2 frames
// carry the span identity from ctx, v1 frames must not carry one.
func (c *Client) stamp(ctx context.Context, req *Request) {
	req.Version = c.negotiate(ctx)
	if req.Version >= 2 {
		req.StampTrace(ctx)
	} else {
		req.TraceID, req.SpanID = 0, 0
	}
}

// downgrade steps down after a StatusVersion response — a belt-and-braces
// path for peers that reject the negotiated version anyway (e.g. the
// server restarted into an older build after the hello). The response
// header's Version field is layout-stable across all protocol versions,
// so the client steps exactly to what the peer advertises (v3→v2 keeps
// the trace header; only a genuine v1 peer costs it), falling back to
// VersionMin when the advertisement is unusable. It reports whether the
// call should be retried (false once no lower version remains).
func (c *Client) downgrade(advertised uint16) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.ver
	if cur == 0 {
		cur = Version
	}
	if cur == VersionMin {
		return false
	}
	to := advertised
	if to < VersionMin || to >= cur {
		to = VersionMin
	}
	c.ver = to
	return true
}

// Addr reports the remote endpoint.
func (c *Client) Addr() string { return c.conn.Addr() }

// Close releases the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

const ewmaAlpha = 0.2

func (c *Client) observe(d time.Duration, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ok {
		c.failures = 0
		if c.ewma == 0 {
			c.ewma = float64(d)
		} else {
			c.ewma = ewmaAlpha*float64(d) + (1-ewmaAlpha)*c.ewma
		}
	} else {
		c.failures++
		// Penalize the endpoint so the selector steers around it.
		if c.ewma == 0 {
			c.ewma = float64(time.Second)
		} else {
			c.ewma *= 4
		}
	}
}

// EWMA reports the smoothed call latency (0 before the first sample).
func (c *Client) EWMA() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.ewma)
}

// Failures reports the consecutive-failure count.
func (c *Client) Failures() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failures
}

// Call issues the request, retrying transport errors and StatusRetry
// responses with linear backoff, and downgrading the protocol version
// once if the peer only speaks v1. Terminal errors return immediately; a
// cancelled or expired context returns a socerr-classified error.
func (c *Client) Call(ctx context.Context, req *Request) (*Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.retries; attempt++ {
		if attempt > 0 && c.backoff > 0 {
			if err := sleepCtx(ctx, c.backoff*time.Duration(attempt)); err != nil {
				return nil, err
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, socerr.FromContext(err)
		}
		c.stamp(ctx, req)
		start := time.Now()
		resp, err := c.conn.Call(ctx, req)
		if err != nil {
			c.observe(0, false)
			lastErr = err
			if errors.Is(err, ErrUnavailable) {
				continue // node may come back under the same address
			}
			return nil, err
		}
		switch resp.Status {
		case StatusRetry:
			c.observe(time.Since(start), true)
			lastErr = resp.Err()
			continue
		case StatusVersion:
			c.observe(time.Since(start), true)
			if c.downgrade(resp.Version) {
				lastErr = resp.Err()
				attempt-- // version negotiation is not a failure
				continue
			}
			return resp, nil
		default:
			c.observe(time.Since(start), true)
			return resp, nil
		}
	}
	return nil, lastErr
}

// sleepCtx waits for d or until ctx is done, classifying the context
// error through socerr.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return socerr.FromContext(ctx.Err())
	case <-t.C:
		return nil
	}
}

// Send delivers a fire-and-forget request (no retry: the path is lossy by
// contract and the caller compensates, as XLOG's pending area does).
func (c *Client) Send(ctx context.Context, req *Request) error {
	c.stamp(ctx, req)
	return c.conn.Send(ctx, req)
}

// SpeaksOneway reports whether the peer's negotiated protocol carries
// one-way frames (≥ VersionMux), running the hello exchange on first use.
// Callers with their own acknowledgement channel (HADR's cumulative harden
// acks) use it to pick between a fire-and-forget Send and a round-trip
// Call toward older peers.
func (c *Client) SpeaksOneway(ctx context.Context) bool {
	return c.negotiate(ctx) >= VersionMux
}

// Notify delivers a one-way notification whose loss the caller tolerates
// only because a later notification supersedes it (cumulative harden
// acks). Toward a peer that speaks the mux fabric (≥ VersionMux) it is a
// single FrameMuxOneway — no round trip on the ack path. Toward an older
// peer it degrades to a full Call: the v1/v2 sequential framing keeps its
// round-trip ack contract, byte-identical to what those builds always
// spoke, so a genuine v2 peer still sees request/response pairs.
func (c *Client) Notify(ctx context.Context, req *Request) error {
	if c.negotiate(ctx) >= VersionMux {
		c.stamp(ctx, req)
		return c.conn.Send(ctx, req)
	}
	_, err := c.Call(ctx, req)
	return err
}

// Selector routes calls to the fastest healthy endpoint among a replica
// set — the paper's "QoS support for best replica selection" (§3.4).
type Selector struct {
	mu      sync.Mutex
	clients []*Client
}

// NewSelector builds a selector over the given clients.
func NewSelector(clients ...*Client) *Selector {
	return &Selector{clients: append([]*Client(nil), clients...)}
}

// Add registers another endpoint.
func (s *Selector) Add(c *Client) {
	s.mu.Lock()
	s.clients = append(s.clients, c)
	s.mu.Unlock()
}

// Len reports the endpoint count.
func (s *Selector) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// Remove drops every endpoint whose address matches addr, reporting how
// many were removed. Cluster workflows use it when a page-server replica
// is retired or killed, so the selector stops burning failover attempts
// on a permanently dead endpoint.
func (s *Selector) Remove(addr string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.clients[:0]
	removed := 0
	for _, c := range s.clients {
		if c.Addr() == addr {
			removed++
			continue
		}
		kept = append(kept, c)
	}
	s.clients = kept
	return removed
}

// Best returns the endpoint with the lowest smoothed latency, preferring
// unsampled endpoints over sampled ones so every replica gets probed.
func (s *Selector) Best() *Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *Client
	var bestLat time.Duration
	for _, c := range s.clients {
		lat := c.EWMA()
		if lat == 0 {
			return c // unprobed: try it
		}
		if best == nil || lat < bestLat {
			best, bestLat = c, lat
		}
	}
	return best
}

// Call routes the request to the best endpoint, failing over to the others
// in latency order if it errors.
func (s *Selector) Call(ctx context.Context, req *Request) (*Response, error) {
	s.mu.Lock()
	ordered := append([]*Client(nil), s.clients...)
	s.mu.Unlock()
	if len(ordered) == 0 {
		return nil, ErrUnavailable
	}
	// Simple selection: try Best first, then the rest.
	best := s.Best()
	tried := map[*Client]bool{}
	var lastErr error
	for _, c := range append([]*Client{best}, ordered...) {
		if c == nil || tried[c] {
			continue
		}
		tried[c] = true
		resp, err := c.Call(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, socerr.FromContext(ctx.Err())
		}
	}
	return nil, lastErr
}
