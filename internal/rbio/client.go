package rbio

import (
	"errors"
	"sync"
	"time"
)

// Client wraps a Conn with protocol-version stamping, transient-failure
// retry, and QoS latency tracking for best-replica selection.
type Client struct {
	conn     Conn
	retries  int
	backoff  time.Duration
	mu       sync.Mutex
	ewma     float64 // nanoseconds; 0 = no samples yet
	failures int     // consecutive failures (reset on success)
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetries sets the number of attempts for retryable failures.
func WithRetries(n int) ClientOption { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base backoff between retries (linear).
func WithBackoff(d time.Duration) ClientOption { return func(c *Client) { c.backoff = d } }

// NewClient wraps conn.
func NewClient(conn Conn, opts ...ClientOption) *Client {
	c := &Client{conn: conn, retries: 5, backoff: 500 * time.Microsecond}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Addr reports the remote endpoint.
func (c *Client) Addr() string { return c.conn.Addr() }

// Close releases the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

const ewmaAlpha = 0.2

func (c *Client) observe(d time.Duration, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ok {
		c.failures = 0
		if c.ewma == 0 {
			c.ewma = float64(d)
		} else {
			c.ewma = ewmaAlpha*float64(d) + (1-ewmaAlpha)*c.ewma
		}
	} else {
		c.failures++
		// Penalize the endpoint so the selector steers around it.
		if c.ewma == 0 {
			c.ewma = float64(time.Second)
		} else {
			c.ewma *= 4
		}
	}
}

// EWMA reports the smoothed call latency (0 before the first sample).
func (c *Client) EWMA() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.ewma)
}

// Failures reports the consecutive-failure count.
func (c *Client) Failures() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failures
}

// Call issues the request, retrying transport errors and StatusRetry
// responses with linear backoff. Terminal errors return immediately.
func (c *Client) Call(req *Request) (*Response, error) {
	req.Version = Version
	var lastErr error
	for attempt := 0; attempt < c.retries; attempt++ {
		if attempt > 0 && c.backoff > 0 {
			//socrates:sleep-ok linear retry backoff against a remote peer; there is no local condition to wait on
			time.Sleep(c.backoff * time.Duration(attempt))
		}
		start := time.Now()
		resp, err := c.conn.Call(req)
		if err != nil {
			c.observe(0, false)
			lastErr = err
			if errors.Is(err, ErrUnavailable) {
				continue // node may come back under the same address
			}
			return nil, err
		}
		switch resp.Status {
		case StatusRetry:
			c.observe(time.Since(start), true)
			lastErr = resp.Err()
			continue
		default:
			c.observe(time.Since(start), true)
			return resp, nil
		}
	}
	return nil, lastErr
}

// Send delivers a fire-and-forget request (no retry: the path is lossy by
// contract and the caller compensates, as XLOG's pending area does).
func (c *Client) Send(req *Request) error {
	req.Version = Version
	return c.conn.Send(req)
}

// Selector routes calls to the fastest healthy endpoint among a replica
// set — the paper's "QoS support for best replica selection" (§3.4).
type Selector struct {
	mu      sync.Mutex
	clients []*Client
}

// NewSelector builds a selector over the given clients.
func NewSelector(clients ...*Client) *Selector {
	return &Selector{clients: append([]*Client(nil), clients...)}
}

// Add registers another endpoint.
func (s *Selector) Add(c *Client) {
	s.mu.Lock()
	s.clients = append(s.clients, c)
	s.mu.Unlock()
}

// Len reports the endpoint count.
func (s *Selector) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// Best returns the endpoint with the lowest smoothed latency, preferring
// unsampled endpoints over sampled ones so every replica gets probed.
func (s *Selector) Best() *Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *Client
	var bestLat time.Duration
	for _, c := range s.clients {
		lat := c.EWMA()
		if lat == 0 {
			return c // unprobed: try it
		}
		if best == nil || lat < bestLat {
			best, bestLat = c, lat
		}
	}
	return best
}

// Call routes the request to the best endpoint, failing over to the others
// in latency order if it errors.
func (s *Selector) Call(req *Request) (*Response, error) {
	s.mu.Lock()
	ordered := append([]*Client(nil), s.clients...)
	s.mu.Unlock()
	if len(ordered) == 0 {
		return nil, ErrUnavailable
	}
	// Simple selection: try Best first, then the rest.
	best := s.Best()
	tried := map[*Client]bool{}
	var lastErr error
	for _, c := range append([]*Client{best}, ordered...) {
		if c == nil || tried[c] {
			continue
		}
		tried[c] = true
		resp, err := c.Call(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, lastErr
}
