package rbio

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync/atomic"
	"testing"

	"socrates/internal/obs"
	"socrates/internal/page"
)

// TestV3LayoutByteIdenticalToV2: v3 changes NO message bytes — it only
// advertises mux-framing capability in the version field. Apart from
// those two version bytes, a v3 request/response must be byte-for-byte
// a v2 frame, so a v3 message downgraded to v2 is a re-stamp, not a
// re-encode.
func TestV3LayoutByteIdenticalToV2(t *testing.T) {
	req := func(v uint16) *Request {
		return &Request{Version: v, Type: MsgGetPage, TraceID: 0xfeed, SpanID: 0xbeef,
			Page: 77, LSN: 4096, Partition: 3, MaxBytes: 8, Consumer: "sec-1",
			Payload: []byte("range")}
	}
	b2, b3 := EncodeRequest(req(2)), EncodeRequest(req(3))
	if len(b2) != len(b3) || !bytes.Equal(b2[2:], b3[2:]) {
		t.Fatalf("v3 request layout diverged from v2:\n v2=%x\n v3=%x", b2, b3)
	}
	if binary.LittleEndian.Uint16(b2[0:2]) != 2 || binary.LittleEndian.Uint16(b3[0:2]) != 3 {
		t.Fatal("version field not where v2 put it")
	}

	resp := func(v uint16) *Response {
		return &Response{Version: v, Status: StatusPartial,
			LSN: 900, Error: "page 81 behind", Payload: []byte("prefix")}
	}
	r2, r3 := EncodeResponse(resp(2)), EncodeResponse(resp(3))
	if len(r2) != len(r3) || !bytes.Equal(r2[2:], r3[2:]) {
		t.Fatalf("v3 response layout diverged from v2:\n v2=%x\n v3=%x", r2, r3)
	}
}

// decodeV2Strict is the v2 build's DecodeRequest, layout-frozen: v1
// fixed fields plus the 16-byte trace header for v≥2, strict length
// checks, and NO tolerance for anything else. It is the oracle that v3
// sequential frames really are v2 frames.
func decodeV2Strict(buf []byte) (*Request, error) {
	const fixedV1 = 2 + 1 + 8 + 8 + 4 + 4 + 2
	if len(buf) < fixedV1 {
		return nil, errors.New("v2: short request frame")
	}
	r := &Request{
		Version: binary.LittleEndian.Uint16(buf[0:2]),
		Type:    MsgType(buf[2]),
	}
	pos := 3
	if r.Version >= 2 {
		if len(buf) < fixedV1+16 {
			return nil, errors.New("v2: short traced request frame")
		}
		r.TraceID = binary.LittleEndian.Uint64(buf[pos : pos+8])
		r.SpanID = binary.LittleEndian.Uint64(buf[pos+8 : pos+16])
		pos += 16
	}
	r.Page = page.ID(binary.LittleEndian.Uint64(buf[pos : pos+8]))
	r.LSN = page.LSN(binary.LittleEndian.Uint64(buf[pos+8 : pos+16]))
	r.Partition = int32(binary.LittleEndian.Uint32(buf[pos+16 : pos+20]))
	r.MaxBytes = int32(binary.LittleEndian.Uint32(buf[pos+20 : pos+24]))
	pos += 24
	slen := int(binary.LittleEndian.Uint16(buf[pos : pos+2]))
	pos += 2
	if len(buf) < pos+slen+4 {
		return nil, errors.New("v2: truncated request consumer")
	}
	r.Consumer = string(buf[pos : pos+slen])
	pos += slen
	plen := int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
	pos += 4
	if len(buf) != pos+plen {
		return nil, errors.New("v2: request payload length mismatch")
	}
	if plen > 0 {
		r.Payload = append([]byte(nil), buf[pos:pos+plen]...)
	}
	return r, nil
}

// startGenuineV2TCPServer runs a byte-faithful v2-build TCP server: the
// strict v2 decoder, sequential framing only, and — like a real v2
// build — it TEARS the connection on any frame kind it has never heard
// of (the mux kinds).
func startGenuineV2TCPServer(t *testing.T, served *atomic.Int32) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					kind, frame, err := ReadFrame(conn)
					if err != nil {
						return
					}
					if kind != FrameCall && kind != FrameOneway {
						return // a v2 build has no mux kinds: torn conn
					}
					req, err := decodeV2Strict(frame)
					if err != nil {
						return
					}
					served.Add(1)
					resp := &Response{Version: 2, Status: StatusOK, LSN: req.LSN + 1}
					if kind == FrameOneway {
						continue
					}
					if WriteFrame(conn, FrameCall, EncodeResponse(resp)) != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestNegotiationAgainstGenuineV2TCPServer: a current (v3) client
// against a byte-faithful v2 server must pin to v2 on the SAME
// connection — sequential frames, trace header intact, zero torn
// frames.
func TestNegotiationAgainstGenuineV2TCPServer(t *testing.T) {
	var served atomic.Int32
	addr := startGenuineV2TCPServer(t, &served)

	conn, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewClient(conn, WithBackoff(0))
	ctx := obs.ContextWithSpan(context.Background(), obs.SpanContext{TraceID: 9, SpanID: 10})
	resp, err := c.Call(ctx, &Request{Type: MsgGetPage, LSN: 40})
	if err != nil {
		t.Fatalf("call against genuine v2 server failed: %v", err)
	}
	if resp.Status != StatusOK || resp.LSN != 41 {
		t.Fatalf("resp = %+v", resp)
	}
	if got := c.ProtocolVersion(); got != 2 {
		t.Fatalf("negotiated version = %d, want 2", got)
	}
	if served.Load() != 2 {
		t.Fatalf("served = %d, want 2 (hello + call, no torn frames)", served.Load())
	}
}

// TestServerServesThreeGenerationsOnOneListener: ONE current TCP server
// must serve a v1-layout caller, a v2 sequential caller, and a v3 mux
// caller concurrently — the per-frame kind dispatch means old peers
// never have to upgrade in lockstep.
func TestServerServesThreeGenerationsOnOneListener(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", func(_ context.Context, req *Request) *Response {
		resp := Ok()
		resp.LSN = req.LSN + 1
		return resp
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// v1-generation caller: raw v1-layout frame, sequential framing.
	v1conn, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer v1conn.Close()
	resp, err := v1conn.Call(context.Background(), &Request{Version: 1, Type: MsgPing, LSN: 100})
	if err != nil || resp.LSN != 101 {
		t.Fatalf("v1 caller: resp=%+v err=%v", resp, err)
	}

	// v2-generation caller: sequential framing with trace header.
	v2conn, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer v2conn.Close()
	resp, err = v2conn.Call(context.Background(), &Request{Version: 2, Type: MsgPing, LSN: 200, TraceID: 1, SpanID: 2})
	if err != nil || resp.LSN != 201 {
		t.Fatalf("v2 caller: resp=%+v err=%v", resp, err)
	}

	// v3-generation caller: mux framing (raw, no netmux import — keep
	// the dependency arrow pointing the right way). Two interleaved
	// requests on one conn, answered by ID.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	send := func(id uint64, lsn page.LSN) {
		payload := make([]byte, 8)
		binary.LittleEndian.PutUint64(payload, id)
		payload = append(payload, EncodeRequest(&Request{Version: Version, Type: MsgPing, LSN: lsn})...)
		if err := WriteFrame(raw, FrameMuxCall, payload); err != nil {
			t.Fatal(err)
		}
	}
	send(1, 300)
	send(2, 400)
	got := map[uint64]page.LSN{}
	for len(got) < 2 {
		kind, frame, err := ReadFrame(raw)
		if err != nil {
			t.Fatal(err)
		}
		if kind != FrameMuxResp || len(frame) < 8 {
			t.Fatalf("kind=%d len=%d, want mux response", kind, len(frame))
		}
		id := binary.LittleEndian.Uint64(frame[:8])
		r, err := DecodeResponse(frame[8:])
		if err != nil {
			t.Fatal(err)
		}
		got[id] = r.LSN
	}
	if got[1] != 301 || got[2] != 401 {
		t.Fatalf("mux responses mispaired: %v", got)
	}
}
