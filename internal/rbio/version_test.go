package rbio

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"reflect"
	"sync/atomic"
	"testing"

	"socrates/internal/obs"
	"socrates/internal/page"
)

// v1Server simulates a peer still running the previous protocol build: it
// answers every response with Version 1 (what the old Ok()/Errorf()
// stamped) and would reject any frame that is not v1 — but with
// hello-first negotiation it must never even see one, because a genuine
// v1 decoder could not parse a v2 frame well enough to reject it.
func v1Server(inner Handler) Handler {
	return func(ctx context.Context, req *Request) *Response {
		if req.Version != 1 {
			return &Response{Version: 1, Status: StatusVersion,
				Error: "server speaks v1, caller sent v2"}
		}
		resp := inner(ctx, req)
		resp.Version = 1
		return resp
	}
}

func TestClientNegotiatesDownToV1(t *testing.T) {
	net := NewInstantNetwork()
	var served atomic.Int32
	net.Serve("old", v1Server(func(_ context.Context, req *Request) *Response {
		served.Add(1)
		if req.Version != 1 {
			return Errorf("v1 server saw a v%d frame", req.Version)
		}
		if req.TraceID != 0 || req.SpanID != 0 {
			return Errorf("v1 frame carried trace header")
		}
		return Ok()
	}))
	c := NewClient(net.Dial("old"), WithBackoff(0))
	if got := c.ProtocolVersion(); got != 0 {
		t.Fatalf("pre-hello version = %d, want 0 (unnegotiated)", got)
	}
	ctx := obs.ContextWithSpan(context.Background(), obs.SpanContext{TraceID: 7, SpanID: 8})
	resp, err := c.Call(ctx, &Request{Type: MsgPing})
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if got := c.ProtocolVersion(); got != VersionMin {
		t.Fatalf("negotiated version = %d, want %d", got, VersionMin)
	}
	if served.Load() != 2 {
		t.Fatalf("served = %d, want 2 (hello + call)", served.Load())
	}
	// Subsequent calls stay at v1 without re-probing.
	if _, err := c.Call(ctx, &Request{Type: MsgPing}); err != nil {
		t.Fatal(err)
	}
	if served.Load() != 3 {
		t.Fatalf("served = %d, want 3", served.Load())
	}
}

func TestClientNegotiatesUpToV2(t *testing.T) {
	net := NewInstantNetwork()
	var sawTrace atomic.Uint64
	net.Serve("new", func(_ context.Context, req *Request) *Response {
		if req.Version >= 2 {
			sawTrace.Store(req.TraceID)
		}
		return Ok()
	})
	c := NewClient(net.Dial("new"))
	ctx := obs.ContextWithSpan(context.Background(), obs.SpanContext{TraceID: 11, SpanID: 12})
	if _, err := c.Call(ctx, &Request{Type: MsgGetPage}); err != nil {
		t.Fatal(err)
	}
	if got := c.ProtocolVersion(); got != Version {
		t.Fatalf("negotiated version = %d, want %d", got, Version)
	}
	// The first real frame (post-hello) already carries the trace header.
	if sawTrace.Load() != 11 {
		t.Fatalf("server saw trace %d, want 11", sawTrace.Load())
	}
}

// decodeV1Strict is the seed build's DecodeRequest, layout-frozen: no
// knowledge of the v2 trace header, strict length checks. A v2 frame fed
// to it misparses (trace bytes land in Page/LSN and the tail checks
// fail), which is why negotiation must ride v1-layout frames only.
func decodeV1Strict(buf []byte) (*Request, error) {
	const fixed = 2 + 1 + 8 + 8 + 4 + 4 + 2
	if len(buf) < fixed {
		return nil, errors.New("v1: short request frame")
	}
	r := &Request{
		Version:   binary.LittleEndian.Uint16(buf[0:2]),
		Type:      MsgType(buf[2]),
		Page:      page.ID(binary.LittleEndian.Uint64(buf[3:11])),
		LSN:       page.LSN(binary.LittleEndian.Uint64(buf[11:19])),
		Partition: int32(binary.LittleEndian.Uint32(buf[19:23])),
		MaxBytes:  int32(binary.LittleEndian.Uint32(buf[23:27])),
	}
	pos := 27
	slen := int(binary.LittleEndian.Uint16(buf[pos : pos+2]))
	pos += 2
	if len(buf) < pos+slen+4 {
		return nil, errors.New("v1: truncated request consumer")
	}
	r.Consumer = string(buf[pos : pos+slen])
	pos += slen
	plen := int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
	pos += 4
	if len(buf) != pos+plen {
		return nil, errors.New("v1: request payload length mismatch")
	}
	if plen > 0 {
		r.Payload = append([]byte(nil), buf[pos:pos+plen]...)
	}
	return r, nil
}

// TestNegotiationAgainstGenuineV1TCPServer runs a byte-faithful v1-build
// TCP server — strict seed-layout decoder, drops the connection on any
// frame it cannot parse — and checks a current client interoperates: the
// hello goes out in v1 layout, the advertised version pins the client to
// v1, and no frame ever carries a trace header.
func TestNegotiationAgainstGenuineV1TCPServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var served atomic.Int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					kind, frame, err := ReadFrame(conn)
					if err != nil {
						return
					}
					req, err := decodeV1Strict(frame)
					if err != nil {
						return // a real v1 build tears the conn here
					}
					served.Add(1)
					resp := &Response{Version: 1, Status: StatusOK, LSN: req.LSN + 1}
					if req.Version != 1 {
						resp = &Response{Version: 1, Status: StatusVersion,
							Error: "server speaks v1"}
					}
					if kind == FrameOneway {
						continue
					}
					if WriteFrame(conn, FrameCall, EncodeResponse(resp)) != nil {
						return
					}
				}
			}(conn)
		}
	}()

	conn, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewClient(conn, WithBackoff(0))
	ctx := obs.ContextWithSpan(context.Background(), obs.SpanContext{TraceID: 3, SpanID: 4})
	resp, err := c.Call(ctx, &Request{Type: MsgGetPage, LSN: 10})
	if err != nil {
		t.Fatalf("call against genuine v1 server failed: %v", err)
	}
	if resp.Status != StatusOK || resp.LSN != 11 {
		t.Fatalf("resp = %+v", resp)
	}
	if got := c.ProtocolVersion(); got != VersionMin {
		t.Fatalf("negotiated version = %d, want %d", got, VersionMin)
	}
	if served.Load() != 2 {
		t.Fatalf("served = %d, want 2 (hello + call, no torn frames)", served.Load())
	}
}

func TestV2ServerAcceptsV1Caller(t *testing.T) {
	net := NewInstantNetwork()
	net.Serve("new", func(_ context.Context, req *Request) *Response {
		resp := Ok()
		resp.LSN = req.LSN + 1
		return resp
	})
	// A raw v1 frame (no trace header) straight at a v2 server.
	resp, err := net.Dial("new").Call(context.Background(),
		&Request{Version: 1, Type: MsgPing, LSN: 10})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK || resp.LSN != 11 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestV2CodecCarriesTraceHeader(t *testing.T) {
	r := &Request{Version: 2, Type: MsgGetPage, TraceID: 0xdeadbeef, SpanID: 42,
		Page: 9, LSN: 100, Consumer: "sec", Payload: []byte("p")}
	got, err := DecodeRequest(EncodeRequest(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("got %+v, want %+v", got, r)
	}
	// v1 frames must not encode (and therefore must drop) the header.
	r1 := &Request{Version: 1, Type: MsgGetPage, TraceID: 5, SpanID: 6, Page: 9}
	got1, err := DecodeRequest(EncodeRequest(r1))
	if err != nil {
		t.Fatal(err)
	}
	if got1.TraceID != 0 || got1.SpanID != 0 {
		t.Fatalf("v1 round-trip leaked trace header: %+v", got1)
	}
}

func TestHandlerSeesFrameTraceNotCallerValues(t *testing.T) {
	net := NewInstantNetwork()
	var seen obs.SpanContext
	net.Serve("ps", func(ctx context.Context, _ *Request) *Response {
		seen = obs.SpanFromContext(ctx)
		return Ok()
	})
	c := NewClient(net.Dial("ps"))
	want := obs.SpanContext{TraceID: 21, SpanID: 34}
	ctx := obs.ContextWithSpan(context.Background(), want)
	if _, err := c.Call(ctx, &Request{Type: MsgPing}); err != nil {
		t.Fatal(err)
	}
	if seen != want {
		t.Fatalf("handler saw %+v, want %+v", seen, want)
	}
}

func TestResponseErrorTyped(t *testing.T) {
	resp := &Response{Status: StatusNotFound, Error: "page 9 gone"}
	var re *ResponseError
	if !errors.As(resp.Err(), &re) {
		t.Fatal("Err() should be a *ResponseError")
	}
	if re.Status != StatusNotFound || re.Msg != "page 9 gone" {
		t.Fatalf("re = %+v", re)
	}
	if !errors.Is(resp.Err(), ErrNotFound) {
		t.Fatal("typed error should still match the sentinel")
	}
}

func TestCallHonorsCancelledContext(t *testing.T) {
	net := NewInstantNetwork()
	net.Serve("s", func(context.Context, *Request) *Response { return Ok() })
	c := NewClient(net.Dial("s"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Call(ctx, &Request{Type: MsgPing}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
