package rbio

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"socrates/internal/simdisk"
	"socrates/internal/socerr"
)

// Conn is one client connection to an RBIO endpoint.
type Conn interface {
	// Call sends a request and waits for the response. The context
	// bounds the wait; its span identity travels in the frame header
	// (v2), never as an in-process value.
	Call(ctx context.Context, req *Request) (*Response, error)
	// Send delivers a request fire-and-forget: no response, no delivery
	// guarantee. The lossy primary→XLOG feed uses this path (§4.3).
	Send(ctx context.Context, req *Request) error
	// Addr identifies the remote endpoint.
	Addr() string
	// Close releases the connection.
	Close() error
}

// --- in-process transport ---

// Network is an in-process RBIO fabric with a simulated latency profile.
// Single-process clusters (and all tests) run on it; the latency model makes
// remote I/O genuinely slower than local cache hits, as in the paper.
type Network struct {
	mu       sync.Mutex
	handlers map[string]Handler
	profile  simdisk.Profile
	rng      *rand.Rand
	loss     float64 // fire-and-forget drop probability
	maxDelay time.Duration
}

// NewNetwork creates a fabric with the LAN latency profile.
func NewNetwork() *Network {
	return &Network{
		handlers: make(map[string]Handler),
		profile:  simdisk.LAN,
		rng:      rand.New(rand.NewSource(42)),
	}
}

// NewInstantNetwork creates a zero-latency fabric for unit tests.
func NewInstantNetwork() *Network {
	return NewNetworkWith(simdisk.Instant)
}

// NewNetworkWith creates a fabric with a custom latency profile — e.g. a
// cross-availability-zone link for HADR replication.
func NewNetworkWith(p simdisk.Profile) *Network {
	n := NewNetwork()
	n.profile = p
	return n
}

// SetLoss sets the drop probability for fire-and-forget sends. Calls are
// never dropped (they ride a reliable channel).
func (n *Network) SetLoss(p float64) {
	n.mu.Lock()
	n.loss = p
	n.mu.Unlock()
}

// SetSeed re-seeds the fabric's jitter/loss/reorder RNG so an entire
// deployment's network behavior replays from one integer (chaos harness
// reproducibility). Call before traffic flows; a zero seed is a no-op,
// keeping the default stream.
func (n *Network) SetSeed(seed int64) {
	if seed == 0 {
		return
	}
	n.mu.Lock()
	n.rng = rand.New(rand.NewSource(seed))
	n.mu.Unlock()
}

// SetReorderWindow makes fire-and-forget sends arrive with up to d of extra
// random delay, so later sends can overtake earlier ones (the "lossy
// protocol" of §4.3 reorders as well as drops).
func (n *Network) SetReorderWindow(d time.Duration) {
	n.mu.Lock()
	n.maxDelay = d
	n.mu.Unlock()
}

// Serve registers a handler under addr, replacing any previous registration.
func (n *Network) Serve(addr string, h Handler) {
	n.mu.Lock()
	n.handlers[addr] = checkVersion(h)
	n.mu.Unlock()
}

// Unserve removes addr, simulating a node going down.
func (n *Network) Unserve(addr string) {
	n.mu.Lock()
	delete(n.handlers, addr)
	n.mu.Unlock()
}

// latency computes one network hop's delay for a payload of the given size.
func (n *Network) latency(bytes int) time.Duration {
	p := n.profile
	lat := p.ReadBase + time.Duration(float64(p.PerKB)*float64(bytes)/1024)
	n.mu.Lock()
	if p.JitterFrac > 0 {
		lat = time.Duration(float64(lat) * (1 + p.JitterFrac*(2*n.rng.Float64()-1)))
	}
	if p.TailProb > 0 && n.rng.Float64() < p.TailProb {
		lat = time.Duration(float64(lat) * p.TailFactor)
	}
	n.mu.Unlock()
	return lat
}

// Dial opens a connection to addr. The handler is resolved per call, so a
// node that restarts under the same address is reachable over old conns.
func (n *Network) Dial(addr string) Conn {
	return &inprocConn{net: n, addr: addr}
}

type inprocConn struct {
	net  *Network
	addr string
}

func (c *inprocConn) resolve() (Handler, error) {
	c.net.mu.Lock()
	h, ok := c.net.handlers[c.addr]
	c.net.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, c.addr)
	}
	return h, nil
}

func (c *inprocConn) Call(ctx context.Context, req *Request) (*Response, error) {
	h, err := c.resolve()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, socerr.FromContext(err)
	}
	simdisk.SleepPrecise(c.net.latency(len(req.Payload) + 64))
	// The handler sees cancellation from ctx, but its trace identity is
	// (re)derived from the frame by the checkVersion wrapper — exactly as
	// over TCP, where nothing else survives the hop.
	resp := h(ctx, req)
	simdisk.SleepPrecise(c.net.latency(len(resp.Payload) + 32))
	return resp, nil
}

func (c *inprocConn) Send(_ context.Context, req *Request) error {
	h, err := c.resolve()
	if err != nil {
		return err
	}
	c.net.mu.Lock()
	drop := c.net.rng.Float64() < c.net.loss
	var extra time.Duration
	if c.net.maxDelay > 0 {
		extra = time.Duration(c.net.rng.Int63n(int64(c.net.maxDelay)))
	}
	c.net.mu.Unlock()
	if drop {
		return nil // silently lost, as a lossy datagram would be
	}
	delay := c.net.latency(len(req.Payload)+64) + extra
	go func() {
		simdisk.SleepPrecise(delay)
		// Detached from the sender's lifetime, as a datagram would be;
		// the trace header still rides the frame.
		h(context.Background(), req)
	}()
	return nil
}

func (c *inprocConn) Addr() string { return c.addr }
func (c *inprocConn) Close() error { return nil }

// --- TCP transport ---

// Frame kinds on the wire. The sequential kinds (FrameCall/FrameOneway)
// are the v1/v2 protocol: one outstanding call per connection, responses
// in request order. The mux kinds are the v3 fabric (internal/netmux):
// the frame payload starts with an 8-byte little-endian request ID so
// many calls can be in flight per connection and responses pair by ID,
// out of order. A server decides per frame, so one connection can carry
// a sequential hello followed by mux traffic, and one server serves v1,
// v2, and v3 clients simultaneously. Clients must never emit a mux frame
// before a hello proves the peer is ≥ VersionMux: pre-mux servers treat
// every frame as sequential and would misparse the ID prefix.
const (
	FrameCall      = 0 // sequential call: expects one FrameCall response
	FrameOneway    = 1 // fire-and-forget, no response
	FrameMuxCall   = 2 // [8-byte id][request]: expects FrameMuxResp with same id
	FrameMuxResp   = 3 // [8-byte id][response]
	FrameMuxOneway = 4 // [8-byte id][request]: no response, id ignored
)

// MaxFrame bounds a frame to defend against corrupt length prefixes.
const MaxFrame = 64 << 20

// TCPServer serves RBIO over TCP with length-prefixed binary frames.
type TCPServer struct {
	ln      net.Listener
	handler Handler
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
}

// ServeTCP starts a server on addr (e.g. "127.0.0.1:0").
func ServeTCP(addr string, h Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{ln: ln, handler: checkVersion(h)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the bound address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for active connections to drain.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn runs one accepted connection. Sequential frames are handled
// inline (the v1/v2 contract: responses in request order). Mux frames
// spawn a handler goroutine each, so many requests from one v3 client
// run concurrently; a write mutex keeps their response frames whole. A
// context per connection cancels in-flight mux handlers when the peer
// goes away, so an abandoned GetPage does not hold server resources.
func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wmu sync.Mutex // serializes response frames from mux handlers
	var inflight sync.WaitGroup
	defer inflight.Wait()
	for {
		kind, frame, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch kind {
		case FrameCall, FrameOneway:
			req, err := DecodeRequest(frame)
			if err != nil {
				return
			}
			resp := s.handler(ctx, req)
			if kind == FrameOneway {
				continue
			}
			wmu.Lock()
			err = WriteFrame(conn, FrameCall, EncodeResponse(resp))
			wmu.Unlock()
			if err != nil {
				return
			}
		case FrameMuxCall, FrameMuxOneway:
			if len(frame) < 8 {
				return // torn mux frame: drop the connection
			}
			id := binary.LittleEndian.Uint64(frame[:8])
			req, err := DecodeRequest(frame[8:])
			if err != nil {
				return
			}
			inflight.Add(1)
			go func(kind byte, id uint64, req *Request) {
				defer inflight.Done()
				resp := s.handler(ctx, req)
				if kind == FrameMuxOneway {
					return
				}
				// Stage [id][response] in a pooled buffer: this path runs
				// once per RPC served.
				bp := frameBufPool.Get().(*[]byte)
				buf := binary.LittleEndian.AppendUint64((*bp)[:0], id)
				buf = AppendResponse(buf, resp)
				wmu.Lock()
				err := WriteFrame(conn, FrameMuxResp, buf)
				wmu.Unlock()
				*bp = buf[:0]
				frameBufPool.Put(bp)
				if err != nil {
					conn.Close() // unblocks the read loop; conn is done
				}
			}(kind, id, req)
		default:
			return // unknown frame kind: protocol error, drop the conn
		}
	}
}

// frameBufPool recycles the header+payload staging buffers so the frame
// write path allocates nothing in steady state. A buffer is safe to
// recycle the moment Write returns: io.Writer must not retain its
// argument.
var frameBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// WriteFrame writes one length-prefixed frame: [len u32 LE][kind u8][payload].
// Concurrent writers on one conn must serialize externally. The frame is
// staged in one pooled buffer and written with one Write call, so a
// frame is either whole on the stream or not written at all (absent a
// partial-write error, which poisons the connection at the caller).
//
//socrates:hotpath every inter-tier frame funnels through here
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	bp := frameBufPool.Get().(*[]byte)
	//socrates:alloc-ok pooled staging buffer; growth beyond 4KiB amortizes across the pool
	buf := append((*bp)[:0], 0, 0, 0, 0, kind)
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	//socrates:alloc-ok pooled staging buffer; growth beyond 4KiB amortizes across the pool
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	*bp = buf[:0]
	frameBufPool.Put(bp)
	return err
}

// ReadFrame reads one length-prefixed frame written by WriteFrame.
func ReadFrame(r io.Reader) (kind byte, payload []byte, err error) {
	head := make([]byte, 5)
	if _, err := io.ReadFull(r, head); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(head)
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("rbio: frame of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return head[4], payload, nil
}

type tcpConn struct {
	mu     sync.Mutex
	conn   net.Conn
	addr   string
	broken bool // stream poisoned by a timeout or I/O error; see poison
}

// DialTCP connects to an RBIO TCP endpoint with sequential framing.
// Calls on one connection are serialized; open several connections for
// parallelism, or prefer netmux.DialTCP, which upgrades to multiplexed
// framing when the peer supports it.
func DialTCP(addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return &tcpConn{conn: c, addr: addr}, nil
}

// NewSequentialConn wraps an already-established stream in the sequential
// v1/v2 framing (one outstanding call, responses in request order).
// netmux uses it to keep the socket it opened when the hello shows the
// peer predates mux framing.
func NewSequentialConn(c net.Conn, addr string) Conn {
	return &tcpConn{conn: c, addr: addr}
}

// poison marks the stream unusable and closes it. The sequential wire
// protocol has no request IDs, so after a timeout or partial write the
// stream can hold a late response (which would pair with the NEXT
// request) or torn framing (which would desync the server). Reuse is
// never safe; subsequent calls fail fast with ErrUnavailable so the
// caller's retry/selector logic redials a fresh connection.
//
// This cost is specific to the sequential framing kept for v1/v2 peers.
// The mux framing (internal/netmux, protocol ≥ VersionMux) removes it:
// a late response is dropped by request ID and the connection survives a
// timeout untouched; only genuinely torn frames kill a mux connection.
// All inter-tier traffic runs on netmux pools, so this path now serves
// only downgraded connections to old peers.
// Caller holds c.mu.
func (c *tcpConn) poison() {
	c.broken = true
	_ = c.conn.Close()
}

func (c *tcpConn) Call(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, socerr.FromContext(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return nil, fmt.Errorf("%w: %s: connection poisoned by earlier timeout", ErrUnavailable, c.addr)
	}
	if d, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(d)
		defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	}
	if err := WriteFrame(c.conn, FrameCall, EncodeRequest(req)); err != nil {
		c.poison()
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	_, frame, err := ReadFrame(c.conn)
	if err != nil {
		c.poison()
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return DecodeResponse(frame)
}

func (c *tcpConn) Send(_ context.Context, req *Request) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return fmt.Errorf("%w: %s: connection poisoned by earlier timeout", ErrUnavailable, c.addr)
	}
	if err := WriteFrame(c.conn, FrameOneway, EncodeRequest(req)); err != nil {
		c.poison()
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return nil
}

func (c *tcpConn) Addr() string { return c.addr }
func (c *tcpConn) Close() error { return c.conn.Close() }
