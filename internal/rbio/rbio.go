// Package rbio implements the Remote Block I/O protocol (§3.4): the typed,
// versioned, stateless request/response protocol Socrates tiers use to talk
// to each other. GetPage@LSN, XLOG block pulls, consumer progress reports,
// and the lossy primary→XLOG feed all travel over RBIO.
//
// The protocol properties the paper calls out are all present:
//
//   - strongly typed: requests and responses are structured messages with a
//     fixed binary codec, not raw byte blobs;
//   - automatic versioning: every frame carries the protocol version and
//     servers reject incompatible callers;
//   - resilient to transient failures: clients retry retryable statuses and
//     transport errors with backoff;
//   - QoS support for best-replica selection: clients track an EWMA of
//     per-endpoint latency and a Selector routes each call to the currently
//     fastest healthy endpoint.
//
// Two transports are provided: an in-process transport with a simulated
// network latency profile (used by single-process clusters and tests, with
// optional lossy fire-and-forget semantics for the XLOG feed), and a TCP
// transport with length-prefixed frames (used by cmd/socratesd).
package rbio

import (
	"encoding/binary"
	"errors"
	"fmt"

	"socrates/internal/page"
)

// Version is the protocol version spoken by this build. Servers accept
// requests whose version matches; mismatches fail with StatusVersion.
const Version uint16 = 1

// MsgType identifies an RBIO operation.
type MsgType uint8

// RBIO operations.
const (
	MsgPing          MsgType = iota // liveness / RTT probe
	MsgGetPage                      // GetPage@LSN: Page, LSN → page image
	MsgPullBlocks                   // log consumer pull: LSN, Partition, MaxBytes → blocks
	MsgReportApplied                // consumer progress report: Consumer, LSN
	MsgFeedBlock                    // lossy primary→XLOG feed: Payload = encoded block
	MsgHardenReport                 // primary→XLOG: LSN = hardened watermark
	MsgWritePages                   // checkpoint/seeding page transfer: Payload = page images
	MsgReadState                    // introspection: current applied/hardened LSNs
	MsgScanCells                    // pushdown: count/filter cells in a page range (§4.1.5)
)

func (m MsgType) String() string {
	switch m {
	case MsgPing:
		return "ping"
	case MsgGetPage:
		return "get-page"
	case MsgPullBlocks:
		return "pull-blocks"
	case MsgReportApplied:
		return "report-applied"
	case MsgFeedBlock:
		return "feed-block"
	case MsgHardenReport:
		return "harden-report"
	case MsgWritePages:
		return "write-pages"
	case MsgReadState:
		return "read-state"
	case MsgScanCells:
		return "scan-cells"
	default:
		return fmt.Sprintf("msg(%d)", uint8(m))
	}
}

// Status is the outcome of a request.
type Status uint8

// Statuses. StatusRetry marks transient conditions the client should retry
// (e.g. a page server still seeding); StatusError is terminal.
const (
	StatusOK Status = iota
	StatusRetry
	StatusError
	StatusVersion // protocol version mismatch
	StatusNotFound
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRetry:
		return "retry"
	case StatusError:
		return "error"
	case StatusVersion:
		return "version-mismatch"
	case StatusNotFound:
		return "not-found"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Request is an RBIO request. Field meaning depends on Type; unused fields
// are zero.
type Request struct {
	Version   uint16
	Type      MsgType
	Page      page.ID  // MsgGetPage
	LSN       page.LSN // MsgGetPage (min LSN), MsgPullBlocks (from), reports
	Partition int32    // MsgPullBlocks filter; -1 = unfiltered (secondaries)
	MaxBytes  int32    // MsgPullBlocks budget
	Consumer  string   // consumer identity for progress/leases
	Payload   []byte   // MsgFeedBlock, MsgWritePages
}

// Response is an RBIO response.
type Response struct {
	Version uint16
	Status  Status
	Error   string   // human-readable cause when Status != StatusOK
	LSN     page.LSN // context-dependent: applied LSN, next pull LSN, ...
	Payload []byte   // page image(s) or encoded blocks
}

// Ok builds a success response.
func Ok() *Response { return &Response{Version: Version, Status: StatusOK} }

// Errorf builds a terminal error response.
func Errorf(format string, args ...any) *Response {
	return &Response{Version: Version, Status: StatusError, Error: fmt.Sprintf(format, args...)}
}

// Retryf builds a retryable response.
func Retryf(format string, args ...any) *Response {
	return &Response{Version: Version, Status: StatusRetry, Error: fmt.Sprintf(format, args...)}
}

// Err converts a non-OK response into a Go error (nil for StatusOK).
func (r *Response) Err() error {
	switch r.Status {
	case StatusOK:
		return nil
	case StatusRetry:
		return fmt.Errorf("%w: %s", ErrRetryable, r.Error)
	case StatusVersion:
		return fmt.Errorf("%w: %s", ErrVersion, r.Error)
	case StatusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, r.Error)
	default:
		return errors.New(r.Error)
	}
}

// Sentinel errors surfaced by Response.Err and the client.
var (
	ErrRetryable   = errors.New("rbio: retryable")
	ErrVersion     = errors.New("rbio: protocol version mismatch")
	ErrNotFound    = errors.New("rbio: not found")
	ErrUnavailable = errors.New("rbio: endpoint unavailable")
)

// Handler processes one request. Handlers must be stateless with respect to
// the connection: every request is self-describing (§3.4).
type Handler func(*Request) *Response

// --- binary codec (shared by both transports) ---

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendBytes(buf []byte, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// EncodeRequest serializes a request.
func EncodeRequest(r *Request) []byte {
	buf := make([]byte, 0, 32+len(r.Consumer)+len(r.Payload))
	buf = binary.LittleEndian.AppendUint16(buf, r.Version)
	buf = append(buf, byte(r.Type))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Page))
	buf = binary.LittleEndian.AppendUint64(buf, r.LSN.Uint64())
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Partition))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.MaxBytes))
	buf = appendString(buf, r.Consumer)
	buf = appendBytes(buf, r.Payload)
	return buf
}

// DecodeRequest parses a request frame.
func DecodeRequest(buf []byte) (*Request, error) {
	const fixed = 2 + 1 + 8 + 8 + 4 + 4 + 2
	if len(buf) < fixed {
		return nil, errors.New("rbio: short request frame")
	}
	r := &Request{
		Version:   binary.LittleEndian.Uint16(buf[0:2]),
		Type:      MsgType(buf[2]),
		Page:      page.ID(binary.LittleEndian.Uint64(buf[3:11])),
		LSN:       page.LSN(binary.LittleEndian.Uint64(buf[11:19])),
		Partition: int32(binary.LittleEndian.Uint32(buf[19:23])),
		MaxBytes:  int32(binary.LittleEndian.Uint32(buf[23:27])),
	}
	pos := 27
	slen := int(binary.LittleEndian.Uint16(buf[pos : pos+2]))
	pos += 2
	if len(buf) < pos+slen+4 {
		return nil, errors.New("rbio: truncated request consumer")
	}
	r.Consumer = string(buf[pos : pos+slen])
	pos += slen
	plen := int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
	pos += 4
	if len(buf) != pos+plen {
		return nil, errors.New("rbio: request payload length mismatch")
	}
	if plen > 0 {
		r.Payload = append([]byte(nil), buf[pos:pos+plen]...)
	}
	return r, nil
}

// EncodeResponse serializes a response.
func EncodeResponse(r *Response) []byte {
	buf := make([]byte, 0, 24+len(r.Error)+len(r.Payload))
	buf = binary.LittleEndian.AppendUint16(buf, r.Version)
	buf = append(buf, byte(r.Status))
	buf = binary.LittleEndian.AppendUint64(buf, r.LSN.Uint64())
	buf = appendString(buf, r.Error)
	buf = appendBytes(buf, r.Payload)
	return buf
}

// DecodeResponse parses a response frame.
func DecodeResponse(buf []byte) (*Response, error) {
	const fixed = 2 + 1 + 8 + 2
	if len(buf) < fixed {
		return nil, errors.New("rbio: short response frame")
	}
	r := &Response{
		Version: binary.LittleEndian.Uint16(buf[0:2]),
		Status:  Status(buf[2]),
		LSN:     page.LSN(binary.LittleEndian.Uint64(buf[3:11])),
	}
	pos := 11
	slen := int(binary.LittleEndian.Uint16(buf[pos : pos+2]))
	pos += 2
	if len(buf) < pos+slen+4 {
		return nil, errors.New("rbio: truncated response error")
	}
	r.Error = string(buf[pos : pos+slen])
	pos += slen
	plen := int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
	pos += 4
	if len(buf) != pos+plen {
		return nil, errors.New("rbio: response payload length mismatch")
	}
	if plen > 0 {
		r.Payload = append([]byte(nil), buf[pos:pos+plen]...)
	}
	return r, nil
}

// checkVersion wraps a handler with protocol version enforcement.
func checkVersion(h Handler) Handler {
	return func(req *Request) *Response {
		if req.Version != Version {
			return &Response{Version: Version, Status: StatusVersion,
				Error: fmt.Sprintf("server speaks v%d, caller sent v%d", Version, req.Version)}
		}
		resp := h(req)
		if resp == nil {
			resp = Errorf("nil response from handler for %v", req.Type)
		}
		resp.Version = Version
		return resp
	}
}
