// Package rbio implements the Remote Block I/O protocol (§3.4): the typed,
// versioned, stateless request/response protocol Socrates tiers use to talk
// to each other. GetPage@LSN, XLOG block pulls, consumer progress reports,
// and the lossy primary→XLOG feed all travel over RBIO.
//
// The protocol properties the paper calls out are all present:
//
//   - strongly typed: requests and responses are structured messages with a
//     fixed binary codec, not raw byte blobs;
//   - automatic versioning: every frame carries the protocol version and
//     servers reject incompatible callers;
//   - resilient to transient failures: clients retry retryable statuses and
//     transport errors with backoff;
//   - QoS support for best-replica selection: clients track an EWMA of
//     per-endpoint latency and a Selector routes each call to the currently
//     fastest healthy endpoint.
//
// Two transports are provided: an in-process transport with a simulated
// network latency profile (used by single-process clusters and tests, with
// optional lossy fire-and-forget semantics for the XLOG feed), and a TCP
// transport with length-prefixed frames (used by cmd/socratesd).
package rbio

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/socerr"
)

// Version is the protocol version spoken by this build. v2 adds a
// TraceID/SpanID trace header to request frames so one request tree can
// be stitched together across tiers. v3 changes nothing in the message
// layout (a v3 message is byte-identical to v2) but advertises that the
// peer understands multiplexed framing: request-ID-tagged frames that
// allow many outstanding RPCs per connection with out-of-order responses
// (see internal/netmux and the FrameMux* kinds). Servers accept any
// version in [VersionMin, Version].
//
// Because the v2 header sits mid-frame, a genuine v1 decoder would
// misparse every field after it — it cannot even recognise the frame
// well enough to answer StatusVersion. Clients therefore discover the
// peer's version with a fixed v1-layout MsgPing hello (see
// Client.negotiate) before ever emitting a v2-layout frame; the response
// layout is identical across versions and its Version field advertises
// the server's build. netmux reuses the same hello to decide whether the
// peer accepts mux framing (version ≥ VersionMux) before the first
// request-ID frame goes out.
const (
	Version    uint16 = 3
	VersionMin uint16 = 1

	// VersionMux is the lowest protocol version whose TCP servers accept
	// multiplexed framing (FrameMuxCall/FrameMuxResp/FrameMuxOneway).
	VersionMux uint16 = 3
)

// MsgType identifies an RBIO operation.
type MsgType uint8

// RBIO operations.
const (
	MsgPing          MsgType = iota // liveness / RTT probe
	MsgGetPage                      // GetPage@LSN: Page, LSN → page image
	MsgPullBlocks                   // log consumer pull: LSN, Partition, MaxBytes → blocks
	MsgReportApplied                // consumer progress report: Consumer, LSN
	MsgFeedBlock                    // lossy primary→XLOG feed: Payload = encoded block
	MsgHardenReport                 // primary→XLOG: LSN = hardened watermark
	MsgWritePages                   // checkpoint/seeding page transfer: Payload = page images
	MsgReadState                    // introspection: current applied/hardened LSNs
	MsgScanCells                    // pushdown: count/filter cells in a page range (§4.1.5)
)

func (m MsgType) String() string {
	switch m {
	case MsgPing:
		return "ping"
	case MsgGetPage:
		return "get-page"
	case MsgPullBlocks:
		return "pull-blocks"
	case MsgReportApplied:
		return "report-applied"
	case MsgFeedBlock:
		return "feed-block"
	case MsgHardenReport:
		return "harden-report"
	case MsgWritePages:
		return "write-pages"
	case MsgReadState:
		return "read-state"
	case MsgScanCells:
		return "scan-cells"
	default:
		return fmt.Sprintf("msg(%d)", uint8(m))
	}
}

// Status is the outcome of a request.
type Status uint8

// Statuses. StatusRetry marks transient conditions the client should retry
// (e.g. a page server still seeding); StatusError is terminal.
const (
	StatusOK Status = iota
	StatusRetry
	StatusError
	StatusVersion // protocol version mismatch
	StatusNotFound
	// StatusPartial marks a response that carries a usable prefix of the
	// requested work plus the reason the rest is missing (e.g. a ranged
	// GetPage where a mid-range page is not yet applied). The payload is
	// valid; Err() classifies as socerr.ErrPartial so callers can both
	// consume the prefix and see why it is short.
	StatusPartial
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRetry:
		return "retry"
	case StatusError:
		return "error"
	case StatusVersion:
		return "version-mismatch"
	case StatusNotFound:
		return "not-found"
	case StatusPartial:
		return "partial"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Request is an RBIO request. Field meaning depends on Type; unused fields
// are zero.
type Request struct {
	Version   uint16
	Type      MsgType
	TraceID   uint64   // v2 trace header: request-tree identity (0 = untraced)
	SpanID    uint64   // v2 trace header: caller's span (0 = untraced)
	Page      page.ID  // MsgGetPage
	LSN       page.LSN // MsgGetPage (min LSN), MsgPullBlocks (from), reports
	Partition int32    // MsgPullBlocks filter; -1 = unfiltered (secondaries)
	MaxBytes  int32    // MsgPullBlocks budget
	Consumer  string   // consumer identity for progress/leases
	Payload   []byte   // MsgFeedBlock, MsgWritePages
}

// SpanContext reads the trace header.
func (r *Request) SpanContext() obs.SpanContext {
	return obs.SpanContext{TraceID: obs.TraceID(r.TraceID), SpanID: obs.SpanID(r.SpanID)}
}

// StampTrace copies the span identity carried by ctx into the trace
// header. v1 peers never see these fields: the client zeroes them when
// the negotiated version is v1, and the v1 codec does not encode them.
func (r *Request) StampTrace(ctx context.Context) {
	sc := obs.SpanFromContext(ctx)
	r.TraceID, r.SpanID = uint64(sc.TraceID), uint64(sc.SpanID)
}

// Response is an RBIO response.
type Response struct {
	Version uint16
	Status  Status
	Error   string   // human-readable cause when Status != StatusOK
	LSN     page.LSN // context-dependent: applied LSN, next pull LSN, ...
	Payload []byte   // page image(s) or encoded blocks
}

// Ok builds a success response.
func Ok() *Response { return &Response{Version: Version, Status: StatusOK} }

// Errorf builds a terminal error response.
func Errorf(format string, args ...any) *Response {
	return &Response{Version: Version, Status: StatusError, Error: fmt.Sprintf(format, args...)}
}

// Retryf builds a retryable response.
func Retryf(format string, args ...any) *Response {
	return &Response{Version: Version, Status: StatusRetry, Error: fmt.Sprintf(format, args...)}
}

// Partialf builds a partial-success response: the caller attaches the
// usable prefix to Payload and the format describes what is missing.
func Partialf(format string, args ...any) *Response {
	return &Response{Version: Version, Status: StatusPartial, Error: fmt.Sprintf(format, args...)}
}

// Err converts a non-OK response into a Go error (nil for StatusOK). The
// returned error is a *ResponseError, so callers can classify with
// errors.As, and it unwraps to the matching sentinel (ErrRetryable,
// ErrVersion, ErrNotFound) so existing errors.Is checks keep working.
func (r *Response) Err() error {
	if r.Status == StatusOK {
		return nil
	}
	return &ResponseError{Status: r.Status, Msg: r.Error}
}

// ResponseError is the typed form of a non-OK RBIO response.
type ResponseError struct {
	Status Status
	Msg    string
}

func (e *ResponseError) Error() string {
	sentinel := e.Unwrap()
	if sentinel == nil {
		if e.Msg == "" {
			return "rbio: " + e.Status.String()
		}
		return e.Msg
	}
	return fmt.Sprintf("%v: %s", sentinel, e.Msg)
}

// Unwrap maps the status to its sentinel (nil for the terminal
// StatusError status, whose only classification is errors.As with a
// *ResponseError target).
func (e *ResponseError) Unwrap() error {
	switch e.Status {
	case StatusRetry:
		return ErrRetryable
	case StatusVersion:
		return ErrVersion
	case StatusNotFound:
		return ErrNotFound
	case StatusPartial:
		return socerr.ErrPartial
	default:
		return nil
	}
}

// Sentinel errors surfaced by Response.Err and the client.
var (
	ErrRetryable   = errors.New("rbio: retryable")
	ErrVersion     = errors.New("rbio: protocol version mismatch")
	ErrNotFound    = errors.New("rbio: not found")
	ErrUnavailable = errors.New("rbio: endpoint unavailable")
)

// Handler processes one request. Handlers must be stateless with respect
// to the connection: every request is self-describing (§3.4). The context
// carries cancellation plus the span identity decoded from the frame's
// trace header — never the caller's in-process values, so in-process and
// TCP transports behave identically.
type Handler func(ctx context.Context, req *Request) *Response

// --- binary codec (shared by both transports) ---

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendBytes(buf []byte, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// EncodeRequest serializes a request. Frames whose Version is ≥2 carry
// the 16-byte TraceID/SpanID header after the type byte; v1 frames use
// the original layout, so a downgraded client is byte-compatible with a
// v1 server.
func EncodeRequest(r *Request) []byte {
	return AppendRequest(make([]byte, 0, 48+len(r.Consumer)+len(r.Payload)), r)
}

// AppendRequest appends the encoded request to dst and returns the
// extended slice — the allocation-free form of EncodeRequest for callers
// (netmux framing, the GetPage fan-out) that own a reusable buffer.
//
//socrates:hotpath per-RPC encode on every inter-tier call
//socrates:alloc-ok every append amortizes into the caller's reusable buffer; TestMuxCallAllocs enforces the steady-state budget
func AppendRequest(dst []byte, r *Request) []byte {
	buf := dst
	buf = binary.LittleEndian.AppendUint16(buf, r.Version)
	buf = append(buf, byte(r.Type))
	if r.Version >= 2 {
		buf = binary.LittleEndian.AppendUint64(buf, r.TraceID)
		buf = binary.LittleEndian.AppendUint64(buf, r.SpanID)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Page))
	buf = binary.LittleEndian.AppendUint64(buf, r.LSN.Uint64())
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Partition))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.MaxBytes))
	buf = appendString(buf, r.Consumer)
	buf = appendBytes(buf, r.Payload)
	return buf
}

// DecodeRequest parses a request frame of either protocol version.
func DecodeRequest(buf []byte) (*Request, error) {
	const fixedV1 = 2 + 1 + 8 + 8 + 4 + 4 + 2
	if len(buf) < fixedV1 {
		return nil, errors.New("rbio: short request frame")
	}
	r := &Request{
		Version: binary.LittleEndian.Uint16(buf[0:2]),
		Type:    MsgType(buf[2]),
	}
	pos := 3
	if r.Version >= 2 {
		if len(buf) < fixedV1+16 {
			return nil, errors.New("rbio: short v2 request frame")
		}
		r.TraceID = binary.LittleEndian.Uint64(buf[pos : pos+8])
		r.SpanID = binary.LittleEndian.Uint64(buf[pos+8 : pos+16])
		pos += 16
	}
	r.Page = page.ID(binary.LittleEndian.Uint64(buf[pos : pos+8]))
	r.LSN = page.LSN(binary.LittleEndian.Uint64(buf[pos+8 : pos+16]))
	r.Partition = int32(binary.LittleEndian.Uint32(buf[pos+16 : pos+20]))
	r.MaxBytes = int32(binary.LittleEndian.Uint32(buf[pos+20 : pos+24]))
	pos += 24
	slen := int(binary.LittleEndian.Uint16(buf[pos : pos+2]))
	pos += 2
	if len(buf) < pos+slen+4 {
		return nil, errors.New("rbio: truncated request consumer")
	}
	r.Consumer = string(buf[pos : pos+slen])
	pos += slen
	plen := int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
	pos += 4
	if len(buf) != pos+plen {
		return nil, errors.New("rbio: request payload length mismatch")
	}
	if plen > 0 {
		r.Payload = append([]byte(nil), buf[pos:pos+plen]...)
	}
	return r, nil
}

// EncodeResponse serializes a response.
func EncodeResponse(r *Response) []byte {
	return AppendResponse(make([]byte, 0, 24+len(r.Error)+len(r.Payload)), r)
}

// AppendResponse appends the encoded response to dst and returns the
// extended slice — the allocation-free form of EncodeResponse for the
// server-side mux write path.
//
//socrates:hotpath per-RPC encode on every inter-tier response
//socrates:alloc-ok every append amortizes into the caller's reusable buffer; TestMuxCallAllocs enforces the steady-state budget
func AppendResponse(dst []byte, r *Response) []byte {
	buf := dst
	buf = binary.LittleEndian.AppendUint16(buf, r.Version)
	buf = append(buf, byte(r.Status))
	buf = binary.LittleEndian.AppendUint64(buf, r.LSN.Uint64())
	buf = appendString(buf, r.Error)
	buf = appendBytes(buf, r.Payload)
	return buf
}

// DecodeResponse parses a response frame.
func DecodeResponse(buf []byte) (*Response, error) {
	const fixed = 2 + 1 + 8 + 2
	if len(buf) < fixed {
		return nil, errors.New("rbio: short response frame")
	}
	r := &Response{
		Version: binary.LittleEndian.Uint16(buf[0:2]),
		Status:  Status(buf[2]),
		LSN:     page.LSN(binary.LittleEndian.Uint64(buf[3:11])),
	}
	pos := 11
	slen := int(binary.LittleEndian.Uint16(buf[pos : pos+2]))
	pos += 2
	if len(buf) < pos+slen+4 {
		return nil, errors.New("rbio: truncated response error")
	}
	r.Error = string(buf[pos : pos+slen])
	pos += slen
	plen := int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
	pos += 4
	if len(buf) != pos+plen {
		return nil, errors.New("rbio: response payload length mismatch")
	}
	if plen > 0 {
		r.Payload = append([]byte(nil), buf[pos:pos+plen]...)
	}
	return r, nil
}

// checkVersion wraps a handler with protocol version enforcement (any
// version in [VersionMin, Version] is accepted, so v2 servers keep
// serving v1 callers) and with trace-header decoding: the handler's
// context carries exactly the span identity from the frame — ambient
// in-process values are overwritten, so both transports propagate traces
// the same way.
func checkVersion(h Handler) Handler {
	return func(ctx context.Context, req *Request) *Response {
		if req.Version < VersionMin || req.Version > Version {
			return &Response{Version: Version, Status: StatusVersion,
				Error: fmt.Sprintf("server speaks v%d..v%d, caller sent v%d",
					VersionMin, Version, req.Version)}
		}
		resp := h(obs.ContextWithSpan(ctx, req.SpanContext()), req)
		if resp == nil {
			resp = Errorf("nil response from handler for %v", req.Type)
		}
		resp.Version = Version
		return resp
	}
}
