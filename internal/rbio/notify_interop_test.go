package rbio_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"socrates/internal/netmux"
	"socrates/internal/rbio"
)

// frameLog records the kind byte of every frame crossing one direction of
// a connection — the byte-faithful view the interop assertions need.
type frameLog struct {
	mu    sync.Mutex
	kinds []byte
}

func (l *frameLog) add(k byte) {
	l.mu.Lock()
	l.kinds = append(l.kinds, k)
	l.mu.Unlock()
}

func (l *frameLog) snapshot() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.kinds...)
}

// A genuine v2 peer has no mux fabric and no one-way harden path: every
// harden report must remain a sequential FrameCall round trip once the
// hello negotiates the v3 one-way path away. The server below is a raw
// byte-level v2 build: it fails the test the moment any frame other than a
// sequential call reaches it.
func TestNotifyRoundTripsToGenuineV2Peer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var reqLog frameLog
	var reqTypes struct {
		mu    sync.Mutex
		types []rbio.MsgType
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			kind, frame, err := rbio.ReadFrame(conn)
			if err != nil {
				return
			}
			reqLog.add(kind)
			if kind != rbio.FrameCall {
				// A v2 build would misparse this; tear the conn down the
				// way a confused peer would.
				return
			}
			req, err := rbio.DecodeRequest(frame)
			if err != nil {
				return
			}
			reqTypes.mu.Lock()
			reqTypes.types = append(reqTypes.types, req.Type)
			reqTypes.mu.Unlock()
			resp := &rbio.Response{Version: 2, Status: rbio.StatusOK}
			if err := rbio.WriteFrame(conn, rbio.FrameCall, rbio.EncodeResponse(resp)); err != nil {
				return
			}
		}
	}()

	conn, err := rbio.DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl := rbio.NewClient(conn)
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.Notify(ctx, &rbio.Request{Type: rbio.MsgHardenReport, LSN: 42}); err != nil {
		t.Fatalf("Notify toward v2 peer: %v", err)
	}
	if v := cl.ProtocolVersion(); v != 2 {
		t.Fatalf("negotiated version = %d, want 2", v)
	}
	for _, k := range reqLog.snapshot() {
		if k != rbio.FrameCall {
			t.Fatalf("frame kind %d reached the v2 peer; only sequential calls may", k)
		}
	}
	reqTypes.mu.Lock()
	defer reqTypes.mu.Unlock()
	if len(reqTypes.types) != 2 || reqTypes.types[0] != rbio.MsgPing ||
		reqTypes.types[1] != rbio.MsgHardenReport {
		t.Fatalf("v2 peer saw %v, want [ping, harden-report] as paired round trips",
			reqTypes.types)
	}
}

// proxyFrames forwards a TCP stream frame by frame, recording each frame's
// kind byte, so the test asserts what is actually on the wire rather than
// what the client believes it sent.
func proxyFrames(t *testing.T, dst net.Conn, src net.Conn, log *frameLog) {
	t.Helper()
	for {
		kind, frame, err := rbio.ReadFrame(src)
		if err != nil {
			dst.Close()
			return
		}
		log.add(kind)
		if err := rbio.WriteFrame(dst, kind, frame); err != nil {
			src.Close()
			return
		}
	}
}

// Toward a v3 peer the harden report rides a single FrameMuxOneway — no
// response frame ever comes back for it.
func TestNotifyIsOnewayOnTheWireToMuxPeer(t *testing.T) {
	var seen struct {
		mu      sync.Mutex
		hardens int
	}
	srv, err := rbio.ServeTCP("127.0.0.1:0", func(_ context.Context, req *rbio.Request) *rbio.Response {
		if req.Type == rbio.MsgHardenReport {
			seen.mu.Lock()
			seen.hardens++
			seen.mu.Unlock()
		}
		return rbio.Ok()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var toServer, toClient frameLog
	go func() {
		client, err := ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			client.Close()
			return
		}
		go proxyFrames(t, server, client, &toServer)
		go proxyFrames(t, client, server, &toClient)
	}()

	conn, err := netmux.DialTCP(ln.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cl := rbio.NewClient(conn)
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.Notify(ctx, &rbio.Request{Type: rbio.MsgHardenReport, LSN: 42}); err != nil {
		t.Fatalf("Notify toward v3 peer: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		seen.mu.Lock()
		n := seen.hardens
		seen.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("one-way harden report never reached the server")
		}
		time.Sleep(time.Millisecond) //socrates:sleep-ok deadline-bounded poll for the async one-way delivery
	}
	// The wire: a sequential hello (netmux upgrade), a mux negotiate call,
	// then the report as a mux one-way. Exactly the two calls — never the
	// one-way — got response frames.
	req := toServer.snapshot()
	if len(req) == 0 || req[len(req)-1] != rbio.FrameMuxOneway {
		t.Fatalf("client->server frame kinds %v: harden report must be the trailing FrameMuxOneway", req)
	}
	oneways := 0
	for _, k := range req {
		if k == rbio.FrameMuxOneway {
			oneways++
		}
	}
	if oneways != 1 {
		t.Fatalf("%d one-way frames on the wire, want exactly 1", oneways)
	}
	if resp := toClient.snapshot(); len(resp) != len(req)-1 {
		t.Fatalf("%d response frames for %d requests: the one-way must not be answered",
			len(resp), len(req))
	}
}
