package rbio

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"socrates/internal/page"
)

func TestRequestCodecRoundTrip(t *testing.T) {
	r := &Request{
		Version: Version, Type: MsgGetPage, Page: 42, LSN: 99,
		Partition: -1, MaxBytes: 1 << 20, Consumer: "secondary-1",
		Payload: []byte{1, 2, 3},
	}
	got, err := DecodeRequest(EncodeRequest(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("got %+v, want %+v", got, r)
	}
}

func TestResponseCodecRoundTrip(t *testing.T) {
	r := &Response{Version: Version, Status: StatusRetry, Error: "seeding",
		LSN: 1234, Payload: []byte("blockdata")}
	got, err := DecodeResponse(EncodeResponse(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("got %+v, want %+v", got, r)
	}
}

func TestCodecTruncation(t *testing.T) {
	req := EncodeRequest(&Request{Type: MsgPing, Consumer: "c", Payload: []byte("xy")})
	for cut := 0; cut < len(req); cut++ {
		if _, err := DecodeRequest(req[:cut]); err == nil {
			t.Fatalf("request truncation at %d undetected", cut)
		}
	}
	resp := EncodeResponse(&Response{Status: StatusOK, Error: "e", Payload: []byte("z")})
	for cut := 0; cut < len(resp); cut++ {
		if _, err := DecodeResponse(resp[:cut]); err == nil {
			t.Fatalf("response truncation at %d undetected", cut)
		}
	}
}

// Property: request codec round-trips arbitrary field values.
func TestRequestCodecProperty(t *testing.T) {
	f := func(ty uint8, pg uint64, lsn uint64, part int32, mb int32, consumer string, payload []byte) bool {
		if len(consumer) > 1000 {
			consumer = consumer[:1000]
		}
		r := &Request{Version: Version, Type: MsgType(ty), Page: page.ID(pg),
			LSN: page.LSN(lsn), Partition: part, MaxBytes: mb, Consumer: consumer}
		if len(payload) > 0 {
			r.Payload = payload
		}
		got, err := DecodeRequest(EncodeRequest(r))
		return err == nil && reflect.DeepEqual(got, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestResponseErr(t *testing.T) {
	if Ok().Err() != nil {
		t.Fatal("OK should map to nil error")
	}
	if !errors.Is(Retryf("x").Err(), ErrRetryable) {
		t.Fatal("retry should map to ErrRetryable")
	}
	vr := &Response{Status: StatusVersion}
	if !errors.Is(vr.Err(), ErrVersion) {
		t.Fatal("version should map to ErrVersion")
	}
	nf := &Response{Status: StatusNotFound, Error: "gone"}
	if !errors.Is(nf.Err(), ErrNotFound) {
		t.Fatal("not-found should map to ErrNotFound")
	}
	if Errorf("boom").Err() == nil {
		t.Fatal("error should map to non-nil")
	}
}

func TestInprocCallRoundTrip(t *testing.T) {
	net := NewInstantNetwork()
	net.Serve("ps-0", func(_ context.Context, req *Request) *Response {
		if req.Type != MsgGetPage || req.Page != 7 {
			return Errorf("unexpected request")
		}
		resp := Ok()
		resp.LSN = 55
		resp.Payload = []byte("page-image")
		return resp
	})
	c := NewClient(net.Dial("ps-0"))
	resp, err := c.Call(context.Background(), &Request{Type: MsgGetPage, Page: 7})
	if err != nil {
		t.Fatal(err)
	}
	if resp.LSN != 55 || string(resp.Payload) != "page-image" {
		t.Fatalf("resp %+v", resp)
	}
}

func TestInprocVersionEnforcement(t *testing.T) {
	net := NewInstantNetwork()
	net.Serve("x", func(context.Context, *Request) *Response { return Ok() })
	conn := net.Dial("x")
	resp, err := conn.Call(context.Background(), &Request{Version: 999, Type: MsgPing})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusVersion {
		t.Fatalf("status = %v, want version mismatch", resp.Status)
	}
}

func TestInprocUnavailableAndRecovery(t *testing.T) {
	net := NewInstantNetwork()
	c := NewClient(net.Dial("ghost"), WithRetries(2), WithBackoff(0))
	if _, err := c.Call(context.Background(), &Request{Type: MsgPing}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	// Node comes up under the same address; the old conn reaches it.
	net.Serve("ghost", func(context.Context, *Request) *Response { return Ok() })
	if _, err := c.Call(context.Background(), &Request{Type: MsgPing}); err != nil {
		t.Fatalf("after serve: %v", err)
	}
}

func TestClientRetriesRetryableStatus(t *testing.T) {
	net := NewInstantNetwork()
	var calls atomic.Int32
	net.Serve("s", func(context.Context, *Request) *Response {
		if calls.Add(1) < 3 {
			return Retryf("not ready")
		}
		return Ok()
	})
	c := NewClient(net.Dial("s"), WithRetries(5), WithBackoff(0))
	resp, err := c.Call(context.Background(), &Request{Type: MsgPing})
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestClientExhaustsRetries(t *testing.T) {
	net := NewInstantNetwork()
	net.Serve("s", func(context.Context, *Request) *Response { return Retryf("never ready") })
	c := NewClient(net.Dial("s"), WithRetries(3), WithBackoff(0))
	_, err := c.Call(context.Background(), &Request{Type: MsgPing})
	if !errors.Is(err, ErrRetryable) {
		t.Fatalf("err = %v, want ErrRetryable", err)
	}
}

func TestClientDoesNotRetryTerminalError(t *testing.T) {
	net := NewInstantNetwork()
	var calls atomic.Int32
	net.Serve("s", func(context.Context, *Request) *Response {
		calls.Add(1)
		return Errorf("terminal")
	})
	c := NewClient(net.Dial("s"), WithRetries(5), WithBackoff(0))
	resp, err := c.Call(context.Background(), &Request{Type: MsgPing})
	if err != nil {
		t.Fatal(err)
	}
	// Two handler invocations: the one-time version hello plus the call
	// itself — the terminal error must not be retried.
	if resp.Status != StatusError || calls.Load() != 2 {
		t.Fatalf("status=%v calls=%d", resp.Status, calls.Load())
	}
}

func TestLossySendDrops(t *testing.T) {
	net := NewInstantNetwork()
	var received atomic.Int32
	net.Serve("xlog", func(_ context.Context, req *Request) *Response {
		// Ignore the client's version hello (a reliable Call); only the
		// lossy feed sends count.
		if req.Type == MsgFeedBlock {
			received.Add(1)
		}
		return Ok()
	})
	net.SetLoss(1.0) // drop everything
	c := NewClient(net.Dial("xlog"))
	for i := 0; i < 20; i++ {
		if err := c.Send(context.Background(), &Request{Type: MsgFeedBlock}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond)
	if received.Load() != 0 {
		t.Fatalf("received %d sends despite 100%% loss", received.Load())
	}
	net.SetLoss(0)
	_ = c.Send(context.Background(), &Request{Type: MsgFeedBlock})
	deadline := time.Now().Add(time.Second)
	for received.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if received.Load() != 1 {
		t.Fatal("send after loss cleared did not arrive")
	}
}

func TestSendToUnknownAddrFails(t *testing.T) {
	net := NewInstantNetwork()
	if err := net.Dial("nobody").Send(context.Background(), &Request{Type: MsgPing}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnserveSimulatesCrash(t *testing.T) {
	net := NewInstantNetwork()
	net.Serve("n", func(context.Context, *Request) *Response { return Ok() })
	c := NewClient(net.Dial("n"), WithRetries(1), WithBackoff(0))
	if _, err := c.Call(context.Background(), &Request{Type: MsgPing}); err != nil {
		t.Fatal(err)
	}
	net.Unserve("n")
	if _, err := c.Call(context.Background(), &Request{Type: MsgPing}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
}

func TestSelectorPrefersFasterEndpoint(t *testing.T) {
	net := NewInstantNetwork()
	net.Serve("fast", func(context.Context, *Request) *Response { return Ok() })
	net.Serve("slow", func(context.Context, *Request) *Response {
		time.Sleep(3 * time.Millisecond)
		return Ok()
	})
	fast := NewClient(net.Dial("fast"))
	slow := NewClient(net.Dial("slow"))
	sel := NewSelector(fast, slow)
	// Warm both EWMAs.
	for i := 0; i < 4; i++ {
		if _, err := sel.Call(context.Background(), &Request{Type: MsgPing}); err != nil {
			t.Fatal(err)
		}
	}
	if got := sel.Best(); got != fast {
		t.Fatalf("Best() = %s, want fast", got.Addr())
	}
}

func TestSelectorFailsOver(t *testing.T) {
	net := NewInstantNetwork()
	net.Serve("up", func(context.Context, *Request) *Response { return Ok() })
	dead := NewClient(net.Dial("down"), WithRetries(1), WithBackoff(0))
	up := NewClient(net.Dial("up"), WithRetries(1), WithBackoff(0))
	sel := NewSelector(dead, up)
	resp, err := sel.Call(context.Background(), &Request{Type: MsgPing})
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("failover failed: %v", err)
	}
}

func TestSelectorEmpty(t *testing.T) {
	sel := NewSelector()
	if _, err := sel.Call(context.Background(), &Request{Type: MsgPing}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
	if sel.Best() != nil {
		t.Fatal("Best of empty selector should be nil")
	}
	sel.Add(NewClient(NewInstantNetwork().Dial("x")))
	if sel.Len() != 1 {
		t.Fatal("Add failed")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", func(_ context.Context, req *Request) *Response {
		resp := Ok()
		resp.LSN = req.LSN + 1
		resp.Payload = append([]byte("echo:"), req.Payload...)
		return resp
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewClient(conn)
	resp, err := c.Call(context.Background(), &Request{Type: MsgGetPage, LSN: 10, Payload: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.LSN != 11 || string(resp.Payload) != "echo:hi" {
		t.Fatalf("resp %+v", resp)
	}
}

func TestTCPOnewayFrame(t *testing.T) {
	var got atomic.Int32
	srv, err := ServeTCP("127.0.0.1:0", func(_ context.Context, req *Request) *Response {
		if req.Type == MsgFeedBlock {
			got.Add(1)
		}
		return Ok()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(context.Background(), &Request{Version: Version, Type: MsgFeedBlock}); err != nil {
		t.Fatal(err)
	}
	// A subsequent call on the same conn proves frame boundaries are intact.
	c := NewClient(conn)
	if _, err := c.Call(context.Background(), &Request{Type: MsgPing}); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 1 {
		t.Fatalf("oneway frames received = %d", got.Load())
	}
}

func TestTCPVersionMismatch(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", func(context.Context, *Request) *Response { return Ok() })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp, err := conn.Call(context.Background(), &Request{Version: 77, Type: MsgPing})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusVersion {
		t.Fatalf("status = %v", resp.Status)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", func(_ context.Context, req *Request) *Response {
		resp := Ok()
		resp.LSN = req.LSN
		return resp
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			conn, err := DialTCP(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			c := NewClient(conn)
			for j := 0; j < 30; j++ {
				want := page.LSN(n*1000 + j)
				resp, err := c.Call(context.Background(), &Request{Type: MsgPing, LSN: want})
				if err != nil || resp.LSN != want {
					t.Errorf("worker %d: %v %v", n, resp, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestEWMAPenalizesFailures(t *testing.T) {
	net := NewInstantNetwork()
	c := NewClient(net.Dial("gone"), WithRetries(1), WithBackoff(0))
	_, _ = c.Call(context.Background(), &Request{Type: MsgPing})
	if c.Failures() != 1 {
		t.Fatalf("failures = %d", c.Failures())
	}
	if c.EWMA() < 100*time.Millisecond {
		t.Fatalf("failed endpoint EWMA = %v, want heavy penalty", c.EWMA())
	}
}
