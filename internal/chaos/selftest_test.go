//go:build chaosfault

package chaos

import (
	"strings"
	"testing"
)

// This file validates the oracle itself. The chaosfault build tag plants
// two known bugs: it swaps the engine's commit-harden wait for a stub
// that returns immediately (the classic "ack before harden" durability
// bug), and it drops simdisk.Replicated's effective write quorum to 1
// (acks backed by a single copy — the flexible-quorum bug). A harness
// whose oracle stays silent against a known-planted bug tests nothing.
//
// Run with: go test -tags chaosfault ./internal/chaos/
// (The regular chaos tests are excluded under this tag; they would —
// correctly — fail.)

// TestOracleCatchesPlantedBug drives the surgical sequence that makes the
// planted bug deterministic: a quorum-loss window (every LZ replica dark)
// during which the buggy engine still acknowledges commits, followed by
// the full heal-and-audit probe. No replica ever held those blocks and
// the failover discards them, so the acked writes are gone — the oracle
// MUST report a durability violation.
func TestOracleCatchesPlantedBug(t *testing.T) {
	r, err := newRunner(Config{Seed: 99})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer r.close()

	r.oracle.SetStep(0)
	if err := r.quorumLoss(0); err != nil {
		t.Fatalf("quorum-loss step: %v", err)
	}
	if r.res.Acked == 0 {
		t.Fatalf("planted bug did not bite: no commit was acked during the quorum-loss window")
	}
	r.oracle.SetStep(1)
	if err := r.catchUpProbe(); err != nil {
		t.Fatalf("catch-up probe: %v", err)
	}

	durability := 0
	for _, v := range r.oracle.Violations() {
		t.Logf("oracle: %s", v)
		if v.Kind == "durability" {
			durability++
		}
	}
	if durability == 0 {
		t.Fatalf("oracle missed the planted ack-before-harden bug: %d acked writes lost, 0 durability violations",
			r.res.Acked)
	}
}

// TestOracleCatchesQuorumPlant validates the lz-dark replication check
// against the planted effectiveQuorum=1 bug. With only one replica dark
// the plant is invisible — writes still physically land on the two
// healthy replicas; the plant only lowers the ack threshold — so the
// test composes two darknesses: one replica darkened directly, then
// lzDark darkens a second. A correct volume would fail every write
// (1 healthy copy < quorum 2) and ack nothing; the planted volume acks
// commits backed by a single copy, and the oracle MUST flag each one as
// a replication violation.
func TestOracleCatchesQuorumPlant(t *testing.T) {
	r, err := newRunner(Config{Seed: 101})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer r.close()

	reps := r.c.LZVolume().Replicas()
	reps[1].SetOutage(true)
	r.oracle.SetStep(0)
	if err := r.lzDark(0); err != nil {
		t.Fatalf("lz-dark step: %v", err)
	}
	reps[1].SetOutage(false)
	if r.res.Acked == 0 {
		t.Fatalf("planted bug did not bite: no commit was acked with two replicas dark")
	}

	caught := false
	for _, v := range r.oracle.Violations() {
		t.Logf("oracle: %s", v)
		if v.Kind == "replication" && strings.Contains(v.Detail, "acked with") {
			caught = true
		}
	}
	if !caught {
		t.Fatalf("oracle missed the planted single-copy-ack bug: %d commits acked, no replication violation",
			r.res.Acked)
	}
}

// TestFullRunSurfacesPlantedBug runs the end-to-end harness under the
// planted bug across a few seeds: at least one full run must surface a
// violation (full runs can mask individual lost writes when later
// overwrites supersede them — that is why the surgical test above exists
// — but a clean sweep across seeds would mean the harness as a whole is
// blind).
func TestFullRunSurfacesPlantedBug(t *testing.T) {
	total := 0
	for seed := int64(1); seed <= 3; seed++ {
		res, err := Run(Config{Seed: seed, Scenario: "faults", Steps: 120})
		if err != nil {
			t.Fatalf("seed %d: chaos run: %v", seed, err)
		}
		for _, v := range res.Violations {
			t.Logf("seed %d: %s", seed, v)
		}
		total += len(res.Violations)
	}
	if total == 0 {
		t.Fatalf("no full run surfaced the planted ack-before-harden bug")
	}
}
