package chaos

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"socrates/internal/cluster"
	"socrates/internal/engine"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/pageserver"
	"socrates/internal/rbio"
	"socrates/internal/simdisk"
	"socrates/internal/xstore"
)

// Config parameterizes one torture run.
type Config struct {
	// Seed drives every random choice of the run: the fault schedule, the
	// workload interleaving, and (threaded through cluster.Config.Seed)
	// every simulated device's jitter stream. Two runs with the same seed,
	// scenario, and step budget make the same moves.
	Seed int64
	// Scenario selects the step-weight profile ("" = "mixed").
	Scenario string
	// Steps bounds the schedule length (0 = 400).
	Steps int
	// Duration, if nonzero, additionally bounds the run by wall clock;
	// the run stops at whichever limit hits first. A duration-truncated
	// run executes a prefix of the seed's schedule.
	Duration time.Duration
	// Logf, if set, receives per-step progress (the CLI's -v).
	Logf func(format string, args ...any)
}

// Result is the outcome of one run.
type Result struct {
	Seed         int64       `json:"seed"`
	Scenario     string      `json:"scenario"`
	ScheduleHash string      `json:"schedule_hash"`
	Steps        int         `json:"steps_executed"`
	Writes       int         `json:"writes"`
	Reads        int         `json:"reads"`
	Faults       int         `json:"faults"`
	Probes       int         `json:"probes"`
	Acked        int         `json:"commits_acked"`
	Failed       int         `json:"commits_failed"`
	ReadErrors   int         `json:"read_errors"`
	Failovers    int         `json:"failovers"`
	Violations   []Violation `json:"violations"`
	ElapsedMS    int64       `json:"elapsed_ms"`
	// Flight is the tail of the cluster's flight-recorder ring, attached
	// only when the run found violations — the incident context that
	// rides along with a failing seed's JSON report.
	Flight []obs.FlightEvent `json:"flight,omitempty"`
}

// Ok reports whether the run finished with zero violations.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

const (
	workTable    = "chaos"
	defaultSteps = 400
)

func keyName(i int) string   { return fmt.Sprintf("c%03d", i) }
func pairAName(i int) string { return fmt.Sprintf("pa%02d", i) }
func pairBName(i int) string { return fmt.Sprintf("pb%02d", i) }

// runner executes one schedule against one live cluster.
type runner struct {
	cfg    Config
	c      *cluster.Cluster
	oracle *Oracle
	gen    *generator
	hash   *scheduleHasher
	res    *Result

	seq       int      // global write sequence (value payloads embed it)
	lastAcked page.LSN // highest acked commit LSN

	// tf is the multi-tenant front-door fleet, booted lazily by the first
	// tenant-* step (only the "tenants" scenario weights them).
	tf *tenantFleet
}

// Run executes one chaos run and reports what the oracle saw. The error
// return is for harness-infrastructure failures (cluster would not boot,
// topology drifted from the shadow model); invariant breaches are NOT
// errors — they land in Result.Violations.
func Run(cfg Config) (*Result, error) {
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	defer r.close()
	return r.run()
}

// newRunner boots a fresh cluster and the judging machinery around it.
// Split out of Run so the chaosfault self-test can drive individual
// schedule steps surgically against the same harness.
func newRunner(cfg Config) (*runner, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Steps <= 0 {
		cfg.Steps = defaultSteps
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	spec, err := Scenario(cfg.Scenario)
	if err != nil {
		return nil, err
	}

	c, err := cluster.New(cluster.Config{
		Name:              fmt.Sprintf("chaos-%d", cfg.Seed),
		Net:               rbio.NewInstantNetwork(),
		LZProfile:         simdisk.Instant,
		LocalSSD:          simdisk.Instant,
		XStore:            xstore.Config{Profile: simdisk.Instant},
		LZCapacity:        32 << 20,
		CheckpointEvery:   5 * time.Millisecond,
		Secondaries:       1,
		PageServers:       1,
		PagesPerPartition: 1 << 20,
		Seed:              cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: cluster boot: %w", err)
	}

	r := &runner{
		cfg:    cfg,
		c:      c,
		oracle: NewOracle(c.Watermarks, c.LZ.HardenedEnd),
		gen:    newGenerator(cfg.Seed, spec),
		hash:   newScheduleHasher(),
		res:    &Result{Seed: cfg.Seed, Scenario: spec.Name},
	}
	if err := c.Primary().Engine.CreateTable(workTable); err != nil {
		c.Close()
		return nil, fmt.Errorf("chaos: create table: %w", err)
	}
	return r, nil
}

func (r *runner) close() {
	if r.tf != nil {
		r.tf.f.Close()
	}
	r.c.Close()
}

// run executes the schedule and the final audit.
func (r *runner) run() (*Result, error) {
	cfg := r.cfg
	start := time.Now()
	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}
	for i := 0; i < cfg.Steps; i++ {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		st := r.gen.Next()
		r.hash.fold(st)
		r.oracle.SetStep(i)
		cfg.Logf("step %4d %-16s key=%d aux=%d name=%s", i, st.Kind, st.Key, st.Aux, st.Name)
		if err := r.execute(st); err != nil {
			return nil, fmt.Errorf("chaos: step %d (%s): %w", i, st.Kind, err)
		}
		r.oracle.CheckLadder()
		r.res.Steps++
	}

	// Final audit: heal every fault, let the whole deployment catch up,
	// verify every key on every tier, then restore to end-of-log and
	// verify the restored image too.
	r.oracle.SetStep(r.res.Steps)
	if err := r.catchUpProbe(); err != nil {
		return nil, err
	}
	if err := r.backupAndVerify("final"); err != nil {
		return nil, err
	}
	r.oracle.CheckLadder()

	r.res.ScheduleHash = fmt.Sprintf("%016x", r.hash.h)
	r.res.Violations = r.oracle.Violations()
	r.res.ElapsedMS = time.Since(start).Milliseconds()
	if len(r.res.Violations) > 0 {
		// Attach the flight-recorder tail: the last thing every tier did
		// before the invariant broke, in one time-ordered stream.
		events := r.c.Flight.Events()
		const tail = 256
		if len(events) > tail {
			events = events[len(events)-tail:]
		}
		r.res.Flight = events
	}
	return r.res, nil
}

func (r *runner) execute(st Step) error {
	switch st.Kind {
	case StepPut:
		r.put(keyName(st.Key))
		return nil
	case StepPair:
		r.putPair(st.Aux)
		return nil
	case StepReadPrimary:
		r.readPrimary(keyName(st.Key))
		return nil
	case StepReadSecondary:
		return r.readSecondary(st.Name, st.Key, st.Aux)
	case StepLZOutage:
		reps := r.c.LZReplicas()
		if st.Key >= len(reps) {
			return fmt.Errorf("LZ replica %d out of range", st.Key)
		}
		reps[st.Key].SetOutage(st.Aux == 1)
		r.res.Faults++
		return nil
	case StepQuorumLoss:
		return r.quorumLoss(st.Key)
	case StepFeedLoss:
		if st.Aux == 1 {
			r.c.Net.SetLoss(0.35)
		} else {
			r.c.Net.SetLoss(0)
		}
		r.res.Faults++
		return nil
	case StepFailover:
		r.res.Faults++
		return r.failover()
	case StepAddSecondary:
		_, err := r.c.AddSecondary(st.Name)
		r.res.Faults++
		return err
	case StepRemoveSecondary:
		r.oracle.DropSecondary(st.Name)
		r.res.Faults++
		return r.c.RemoveSecondary(st.Name)
	case StepPSChurn:
		r.res.Faults++
		return r.psChurn()
	case StepSplit:
		r.res.Faults++
		return r.c.SplitPageServer(0)
	case StepXStoreOutage:
		r.c.Store.SetOutage(st.Aux == 1)
		r.res.Faults++
		return nil
	case StepBackup:
		r.res.Probes++
		if err := r.c.Backup(st.Name); err != nil {
			r.oracle.Report("restore", fmt.Sprintf("backup %q failed: %v", st.Name, err))
		}
		return nil
	case StepRestoreProbe:
		r.res.Probes++
		r.restoreProbe(st.Name, st.Aux)
		return nil
	case StepCatchUpProbe:
		r.res.Probes++
		return r.catchUpProbe()
	case StepMuxDisturb:
		// Tear every pooled netmux connection mid-flight; pools must
		// evict and redial, in-flight calls fail over at the client
		// layer, and no acked write may be lost.
		r.c.SeverMuxConns()
		r.res.Faults++
		return nil
	case StepLZDark:
		r.res.Faults++
		return r.lzDark(st.Key)
	case StepTenantBurst:
		return r.tenantBurst(st.Key)
	case StepTenantMigrate:
		return r.tenantMigrate(st.Key, st.Aux)
	case StepTenantRebalance:
		return r.tenantRebalance()
	}
	return fmt.Errorf("unknown step kind %v", st.Kind)
}

// put commits one write to key and records the outcome. Failed commits
// trigger a recovery failover when the engine or its log writer is
// poisoned, so the workload survives its own faults the way clients
// survive a real outage: reconnect and retry.
func (r *runner) put(key string) {
	r.seq++
	val := fmt.Sprintf("v%d", r.seq)
	r.res.Writes++
	e := r.c.Primary().Engine
	tx := e.Begin()
	if err := tx.Put(workTable, []byte(key), []byte(val)); err != nil {
		tx.Abort()
		r.recordFailed(key, val)
		r.recoverIfPoisoned(err)
		return
	}
	err := tx.Commit()
	if err == nil {
		r.recordAcked(tx, key, val)
		return
	}
	r.recordFailed(key, val)
	r.recoverIfPoisoned(err)
}

// putPair writes both halves of pair i in one transaction.
func (r *runner) putPair(i int) {
	r.seq++
	val := fmt.Sprintf("p%d", r.seq)
	r.res.Writes++
	e := r.c.Primary().Engine
	tx := e.Begin()
	if err := tx.Put(workTable, []byte(pairAName(i)), []byte(val)); err == nil {
		if err := tx.Put(workTable, []byte(pairBName(i)), []byte(val)); err == nil {
			if err := tx.Commit(); err == nil {
				r.recordAcked(tx, pairAName(i), val)
				r.recordAcked(tx, pairBName(i), val)
				return
			}
			r.recordFailed(pairAName(i), val)
			r.recordFailed(pairBName(i), val)
			r.recoverIfPoisoned(errors.New("pair commit failed"))
			return
		}
	}
	tx.Abort()
	r.recordFailed(pairAName(i), val)
	r.recordFailed(pairBName(i), val)
}

// recordAcked logs a successful commit: its LSN comes from the commit
// record, its timestamp from the clock the commit just published (the
// runner is sequential, so the clock still points at this commit).
func (r *runner) recordAcked(tx *engine.Tx, key, val string) {
	lsn := tx.CommitLSN()
	ts := r.c.Primary().Engine.Clock().Visible()
	r.oracle.RecordWrite(key, val, r.seq, lsn, ts, true)
	r.res.Acked++
	if lsn.After(r.lastAcked) {
		r.lastAcked = lsn
	}
}

// recordFailed logs a commit that was not acknowledged. The value is
// recorded with LSN 0 — "must never surface". (A failed quorum write
// leaves zero replicas holding the block, and a poisoned writer never
// retries, so an unacked write in this harness is genuinely unreachable;
// the oracle flags it if it ever appears anywhere.)
func (r *runner) recordFailed(key, val string) {
	r.oracle.RecordWrite(key, val, r.seq, 0, 0, false)
	r.res.Failed++
}

// recoverIfPoisoned performs a failover when a commit failure poisoned
// the engine or its log writer (quorum loss does both by design).
func (r *runner) recoverIfPoisoned(err error) {
	if err == nil {
		return
	}
	if failed, _ := r.c.Primary().Engine.Failed(); failed {
		//socrates:ignore-err best-effort recovery; the next step's commit surfaces persistent failure
		_ = r.failover()
		return
	}
	// A failed harden wait poisons the log writer permanently; probe it
	// with a no-op wait and fail over if it is dead.
	probe, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if werr := r.c.Primary().Writer().WaitHarden(probe, 0); werr != nil && probe.Err() == nil {
		//socrates:ignore-err best-effort recovery; the next step's commit surfaces persistent failure
		_ = r.failover()
	}
}

func (r *runner) failover() error {
	_, _, err := r.c.Failover()
	if err != nil {
		return fmt.Errorf("failover: %w", err)
	}
	r.res.Failovers++
	return nil
}

func (r *runner) readPrimary(key string) {
	r.res.Reads++
	v, found, err := r.c.Primary().Engine.BeginRO().Get(workTable, []byte(key))
	if err != nil {
		r.res.ReadErrors++
		return
	}
	r.oracle.ObservePrimary(key, string(v), found)
}

// readSecondary reads one workload key and one pair on the named
// secondary, bracketing the reads with its visibility clock and applied
// watermark for the snapshot-consistency checks.
func (r *runner) readSecondary(name string, key, pair int) error {
	sec, ok := r.c.Secondary(name)
	if !ok {
		return fmt.Errorf("secondary %q not in cluster (shadow model drift)", name)
	}
	r.res.Reads++
	visBefore := sec.Engine.Clock().Visible()
	tx := sec.Engine.BeginRO()
	v, found, err := tx.Get(workTable, []byte(keyName(key)))
	va, fa, errA := tx.Get(workTable, []byte(pairAName(pair)))
	vb, fb, errB := tx.Get(workTable, []byte(pairBName(pair)))
	appliedAfter := sec.AppliedLSN()
	if err != nil || errA != nil || errB != nil {
		r.res.ReadErrors++
		return nil
	}
	r.oracle.ObserveSecondary(name, keyName(key), string(v), found, visBefore, appliedAfter)
	r.oracle.ObserveSecondary(name, pairAName(pair), string(va), fa, visBefore, appliedAfter)
	r.oracle.ObserveSecondary(name, pairBName(pair), string(vb), fb, visBefore, appliedAfter)
	r.oracle.ObservePair(name, pairSeq(va), pairSeq(vb), fa, fb)
	return nil
}

// pairSeq extracts the sequence number from a pair payload ("p<seq>").
func pairSeq(v []byte) int {
	if len(v) < 2 || v[0] != 'p' {
		return -1
	}
	n, err := strconv.Atoi(string(v[1:]))
	if err != nil {
		return -1
	}
	return n
}

// quorumLoss darkens every LZ replica, attempts commits that must NOT be
// acknowledged (there is no quorum to harden them), heals the replicas,
// and fails over — the recovery a real deployment would perform after
// losing its landing zone. Any ack during the window is recorded as a
// durable promise; if the write then vanishes, the oracle reports the
// durability violation. (The chaosfault build plants exactly that bug.)
func (r *runner) quorumLoss(key int) error {
	reps := r.c.LZReplicas()
	for _, d := range reps {
		d.SetOutage(true)
	}
	r.res.Faults++
	var acked page.LSN // highest commit LSN acked inside the window
	for i := 0; i < 2; i++ {
		r.seq++
		k := keyName((key + i) % numKeys)
		val := fmt.Sprintf("v%d", r.seq)
		r.res.Writes++
		e := r.c.Primary().Engine
		tx := e.Begin()
		if err := tx.Put(workTable, []byte(k), []byte(val)); err != nil {
			tx.Abort()
			r.recordFailed(k, val)
			continue
		}
		if err := tx.Commit(); err == nil {
			// The system acked a commit no LZ replica could harden. The
			// ack is a durability promise either way: record it and let
			// the durability audit decide whether it was kept.
			r.recordAcked(tx, k, val)
			if tx.CommitLSN().After(acked) {
				acked = tx.CommitLSN()
			}
		} else {
			r.recordFailed(k, val)
		}
	}
	if acked != 0 {
		// An ack arrived while every replica was dark — the engine did
		// not gate it on hardening. Sequence the flush attempt inside the
		// outage window before healing, so the promise-vs-durability race
		// is decided here, deterministically, not by whether the heal
		// beats the flush timer. (A correct engine never reaches this
		// branch: its commits fail under quorum loss.)
		wctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		//socrates:ignore-err the wait exists only to order the flush attempt inside the window; its error (quorum loss) is the very outcome under test
		_ = r.c.Primary().Writer().WaitHarden(wctx, acked)
		cancel()
	}
	for _, d := range reps {
		d.SetOutage(false)
	}
	return r.failover()
}

// lzDark darkens one LZ replica mid commit-burst — the flexible-quorum
// probe for adaptive group commit. Commits must keep acking on the
// remaining 2-of-3 quorum, and two invariants are judged within the step:
// every byte hardened while the replica was dark must sit on at least
// LZQuorum replicas at harden time (an ack backed by fewer copies is the
// exact bug the chaosfault build plants), and the straggler must be fully
// reconciled — zero missed bytes — before it serves reads again.
func (r *runner) lzDark(key int) error {
	vol := r.c.LZVolume()
	if vol == nil {
		return errors.New("lz-dark: landing zone is not replicated")
	}
	reps := vol.Replicas()
	idx := key % len(reps)
	startOff := vol.Size()
	ackedBefore := r.res.Acked
	reps[idx].SetOutage(true)
	for i := 0; i < 6; i++ {
		r.put(keyName((key*7 + i) % numKeys))
	}
	// Judge before healing: the replication invariant is about copy count
	// at harden time, not after repair. Sequence the log flush inside the
	// window first — an engine that acks before hardening (the chaosfault
	// plant) would otherwise race its own flush past the judgement.
	ackedDuring := r.res.Acked - ackedBefore
	if ackedDuring > 0 && r.lastAcked != 0 {
		wctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		//socrates:ignore-err the wait only orders the flush before the copy-count audit; a harden failure surfaces as a failed commit on the next step
		_ = r.c.Primary().Writer().WaitHarden(wctx, r.lastAcked)
		cancel()
	}
	endOff := vol.Size()
	if ackedDuring > 0 && endOff > startOff {
		if got := vol.AckedCopies(startOff, endOff-startOff); got < vol.Quorum() {
			r.oracle.Report("replication", fmt.Sprintf(
				"lz-dark window [%d,%d): %d commits acked with %d replica copies, quorum is %d",
				startOff, endOff, ackedDuring, got, vol.Quorum()))
		}
	}
	reps[idx].SetOutage(false)
	if _, err := vol.Reconcile(); err != nil {
		r.oracle.Report("replication", fmt.Sprintf("lz-dark reconcile: %v", err))
		return nil
	}
	if miss := vol.MissedBytes(idx); miss != 0 {
		r.oracle.Report("replication", fmt.Sprintf(
			"lz-dark: replica %d still missing %d bytes after reconcile", idx, miss))
	}
	return nil
}

// psChurn adds a page-server replica to partition 0, then kills the
// oldest server covering the same range — a crash with a warm standby
// already serving.
func (r *runner) psChurn() error {
	before := r.c.PageServers()
	if err := r.c.AddPageServerReplica(0); err != nil {
		return fmt.Errorf("add ps replica: %w", err)
	}
	var fresh *pageserver.Server
	for _, srv := range r.c.PageServers() {
		seen := false
		for _, old := range before {
			if srv == old {
				seen = true
				break
			}
		}
		if !seen {
			fresh = srv
			break
		}
	}
	if fresh == nil {
		return errors.New("ps churn: replica did not appear")
	}
	flo, fhi := fresh.Range()
	for _, old := range before {
		lo, hi := old.Range()
		if lo == flo && hi == fhi {
			return r.c.KillPageServer(old)
		}
	}
	return nil // no same-range elder (post-split stray); pure add
}

// restoreProbe restores the named backup — to just past the last acked
// commit (aux=1) or to end of log (aux=0) — and audits the image.
func (r *runner) restoreProbe(backup string, aux int) {
	target := page.LSN(0)
	if aux == 1 && r.lastAcked != 0 {
		target = r.lastAcked.Next()
	}
	eng, _, err := r.c.PointInTimeRestore(backup, target)
	if errors.Is(err, cluster.ErrRestoreBeforeBackup) {
		// The last acked commit predates the backup snapshot: the typed
		// refusal is the correct outcome (restoring "before the backup"
		// silently would hand back a too-new image).
		return
	}
	if err != nil {
		r.oracle.Report("restore", fmt.Sprintf("restore %q@%d failed: %v", backup, target, err))
		return
	}
	r.auditRestored(eng, target)
}

func (r *runner) auditRestored(eng *engine.Engine, target page.LSN) {
	for i := 0; i < numKeys; i++ {
		v, found, err := eng.BeginRO().Get(workTable, []byte(keyName(i)))
		if err != nil {
			r.oracle.Report("restore", fmt.Sprintf("restored read %s: %v", keyName(i), err))
			continue
		}
		r.oracle.ObserveRestored(keyName(i), string(v), found, target)
	}
	for i := 0; i < numPairs; i++ {
		tx := eng.BeginRO()
		va, fa, errA := tx.Get(workTable, []byte(pairAName(i)))
		vb, fb, errB := tx.Get(workTable, []byte(pairBName(i)))
		if errA != nil || errB != nil {
			r.oracle.Report("restore", fmt.Sprintf("restored pair read %d: %v/%v", i, errA, errB))
			continue
		}
		r.oracle.ObserveRestored(pairAName(i), string(va), fa, target)
		r.oracle.ObserveRestored(pairBName(i), string(vb), fb, target)
		r.oracle.ObservePair("restore", pairSeq(va), pairSeq(vb), fa, fb)
	}
}

// catchUpProbe heals every injected fault, waits for the whole
// deployment to catch up to the hardened end, and audits every key on
// the primary and on every secondary — the full durability sweep.
func (r *runner) catchUpProbe() error {
	for _, d := range r.c.LZReplicas() {
		d.SetOutage(false)
	}
	r.c.Store.SetOutage(false)
	r.c.Net.SetLoss(0)
	// Synchronous gap fill: harden reports are asynchronous (and were
	// possibly rained on by feed loss); promotion must reach the durable
	// end before consumers can.
	r.c.XLOG.ReportHardened(context.Background(), r.c.LZ.HardenedEnd())
	if err := r.c.WaitForCatchUp(20 * time.Second); err != nil {
		r.oracle.Report("stall", fmt.Sprintf("catch-up after healing all faults: %v", err))
		return nil
	}
	for i := 0; i < numKeys; i++ {
		r.readPrimary(keyName(i))
	}
	for i := 0; i < numPairs; i++ {
		e := r.c.Primary().Engine
		tx := e.BeginRO()
		va, fa, errA := tx.Get(workTable, []byte(pairAName(i)))
		vb, fb, errB := tx.Get(workTable, []byte(pairBName(i)))
		if errA != nil || errB != nil {
			r.res.ReadErrors++
			continue
		}
		r.oracle.ObservePrimary(pairAName(i), string(va), fa)
		r.oracle.ObservePrimary(pairBName(i), string(vb), fb)
		r.oracle.ObservePair("primary", pairSeq(va), pairSeq(vb), fa, fb)
	}
	for _, name := range r.c.Secondaries() {
		for i := 0; i < numKeys; i++ {
			if err := r.readSecondary(name, i, i%numPairs); err != nil {
				return err
			}
		}
	}
	return nil
}

// backupAndVerify takes a fresh backup and audits an end-of-log restore
// from it — the final "is the whole log really replayable" probe.
func (r *runner) backupAndVerify(name string) error {
	if err := r.c.Backup(name); err != nil {
		r.oracle.Report("restore", fmt.Sprintf("final backup: %v", err))
		return nil
	}
	r.restoreProbe(name, 0)
	return nil
}
