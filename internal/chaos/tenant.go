package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"socrates/internal/frontdoor"
	"socrates/internal/socerr"
)

// tenantFleet is the lazily booted front-door deployment the tenant
// step kinds torture: tenantCount tenants round-robined over
// tenantPools clusters behind one router, plus the acked-write history
// the migration audits judge against. It lives beside the main chaos
// cluster; the main oracle keeps judging that cluster while these steps
// judge the fleet.
type tenantFleet struct {
	f     *frontdoor.Fleet
	acked map[string]map[string]string // tenant → key → last acked value
	seq   int
}

func tenantName(i int) string { return fmt.Sprintf("t%d", i) }

const tenantOpTimeout = 30 * time.Second

// tenants boots the fleet on first use. Admission budgets are finite on
// purpose: the burst step must be able to overrun them.
func (r *runner) tenants() (*tenantFleet, error) {
	if r.tf != nil {
		return r.tf, nil
	}
	names := make([]string, tenantCount)
	for i := range names {
		names[i] = tenantName(i)
	}
	f, err := frontdoor.NewFleet(frontdoor.FleetConfig{
		Clusters:       tenantPools,
		Tenants:        names,
		AdmissionRate:  300,
		AdmissionBurst: 50,
		Seed:           r.cfg.Seed + 7777,
	})
	if err != nil {
		return nil, fmt.Errorf("tenant fleet boot: %w", err)
	}
	tf := &tenantFleet{f: f, acked: make(map[string]map[string]string)}
	for _, tn := range names {
		tf.acked[tn] = make(map[string]string)
		ctx, cancel := context.WithTimeout(context.Background(), tenantOpTimeout)
		_, err := f.Router.ExecContext(ctx, tn, `CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)`)
		cancel()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("tenant %s bootstrap: %w", tn, err)
		}
	}
	r.tf = tf
	return tf, nil
}

// put commits one uniquely keyed row through the router and records the
// ack. Admission rejections are legal (the burst step exists to cause
// them) but must be ErrAdmission-typed — a rejection that surfaces as
// backpressure would re-throw client retries at the saturated pool.
func (r *runner) tenantPut(tf *tenantFleet, tenant string) {
	tf.seq++
	k := fmt.Sprintf("q%05d", tf.seq)
	v := fmt.Sprintf("tv%d", tf.seq)
	r.res.Writes++
	ctx, cancel := context.WithTimeout(context.Background(), tenantOpTimeout)
	defer cancel()
	_, err := tf.f.Router.ExecContext(ctx, tenant,
		fmt.Sprintf(`INSERT INTO kv VALUES ('%s', '%s')`, k, v))
	if err == nil {
		tf.acked[tenant][k] = v
		r.res.Acked++
		return
	}
	r.res.Failed++
	if errors.Is(err, socerr.ErrBackpressure) {
		r.oracle.Report("tenant", fmt.Sprintf(
			"tenant %s: over-budget write classified as backpressure, want admission: %v", tenant, err))
	}
}

// tenantAudit reads every acked key of one tenant through the router
// and judges acked-write survival — THE migration invariant: an ack is
// a durability promise that must hold across any number of cutovers.
// Reads retry a few times so a transient (a pool healing from the
// failover race) is not misread as data loss.
func (r *runner) tenantAudit(tf *tenantFleet, tenant string) {
	r.res.Probes++
	for k, want := range tf.acked[tenant] {
		var got string
		var found bool
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			got, found, err = tf.get(tenant, k)
			if err == nil {
				break
			}
		}
		if err != nil {
			r.oracle.Report("migration", fmt.Sprintf(
				"tenant %s: audit read of %s failed: %v", tenant, k, err))
			continue
		}
		if !found {
			r.oracle.Report("migration", fmt.Sprintf(
				"tenant %s: acked write %s=%s lost (not found at current home)", tenant, k, want))
			continue
		}
		if got != want {
			r.oracle.Report("migration", fmt.Sprintf(
				"tenant %s: acked write %s=%s surfaced as %q", tenant, k, want, got))
		}
	}
}

func (tf *tenantFleet) get(tenant, k string) (string, bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), tenantOpTimeout)
	defer cancel()
	res, err := tf.f.Router.AuditContext(ctx, tenant,
		fmt.Sprintf(`SELECT v FROM kv WHERE k = '%s'`, k))
	if err != nil {
		return "", false, err
	}
	if len(res.Rows) == 0 {
		return "", false, nil
	}
	return res.Rows[0][0].String(), true, nil
}

// tenantBurst is the noisy-neighbor probe: tenant Key fires a write
// burst sized past its admission burst, then its co-resident victim
// runs its own small batch — which must be admitted in full. A victim
// op rejected because of a NEIGHBOR's burst is the isolation failure
// this step exists to catch.
func (r *runner) tenantBurst(key int) error {
	tf, err := r.tenants()
	if err != nil {
		return err
	}
	noisy := tenantName(key % tenantCount)
	// Round-robin placement: tenants i and i+tenantPools share a pool.
	victim := tenantName((key + tenantPools) % tenantCount)
	r.res.Faults++
	for i := 0; i < 80; i++ {
		r.tenantPut(tf, noisy)
	}
	// Let the victim's own bucket refill a small batch's worth: the
	// isolation claim is that the NEIGHBOR's burst cannot consume the
	// victim's tokens — not that the victim has unlimited budget (it may
	// itself have been the noisy one a step ago).
	time.Sleep(25 * time.Millisecond) //socrates:sleep-ok token-bucket refill window; the assertion below depends on it
	for i := 0; i < 4; i++ {
		tf.seq++
		k := fmt.Sprintf("q%05d", tf.seq)
		v := fmt.Sprintf("tv%d", tf.seq)
		r.res.Writes++
		ctx, cancel := context.WithTimeout(context.Background(), tenantOpTimeout)
		_, err := tf.f.Router.ExecContext(ctx, victim,
			fmt.Sprintf(`INSERT INTO kv VALUES ('%s', '%s')`, k, v))
		cancel()
		if err != nil {
			r.res.Failed++
			r.oracle.Report("tenant", fmt.Sprintf(
				"victim %s starved during %s's burst: %v", victim, noisy, err))
			continue
		}
		tf.acked[victim][k] = v
		r.res.Acked++
	}
	return nil
}

// tenantMigrate live-migrates a tenant, injecting writes during the
// live window (they exist only in the XLOG tail at cutover) and — when
// the schedule arms it — racing a source-cluster failover against the
// migration. Whatever the outcome, the tenant must still serve and
// every acked write must survive.
func (r *runner) tenantMigrate(key, aux int) error {
	tf, err := r.tenants()
	if err != nil {
		return err
	}
	tenant := tenantName(key % tenantCount)
	asg, ok := tf.f.Placement.Lookup(tenant)
	if !ok {
		return fmt.Errorf("tenant %s missing from placement", tenant)
	}
	dst := fmt.Sprintf("h%d", aux%tenantPools)
	if dst == asg.Cluster {
		dst = fmt.Sprintf("h%d", (aux+1)%tenantPools)
	}
	srcHost := tf.f.Hosts()[0]
	for _, h := range tf.f.Hosts() {
		if h.ID() == asg.Cluster {
			srcHost = h
		}
	}
	withFailover := aux&4 != 0
	r.res.Faults++

	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), tenantOpTimeout)
	defer cancel()
	merr := tf.f.Migrate(ctx, tenant, dst, frontdoor.WithAfterCopy(func() {
		for i := 0; i < 3; i++ {
			r.tenantPut(tf, tenant)
		}
		if withFailover {
			wg.Add(1)
			go func() {
				defer wg.Done()
				//socrates:ignore-err the failover is the injected fault; a failed one leaves the old primary serving, which the audit tolerates
				_, _, _ = srcHost.Cluster().Failover()
			}()
			r.res.Failovers++
		}
	}))
	wg.Wait()
	if merr != nil {
		// A migration aborted by the failover race is legal — the state
		// machine rolls back to serving on the source. Data loss is not;
		// the audit below decides.
		r.cfg.Logf("tenant-migrate %s → %s aborted: %v", tenant, dst, merr)
	}
	r.tenantAudit(tf, tenant)
	return nil
}

// tenantRebalance moves one tenant from the most-crowded pool to the
// least-crowded and audits the whole fleet — the elastic-pool
// housekeeping move.
func (r *runner) tenantRebalance() error {
	tf, err := r.tenants()
	if err != nil {
		return err
	}
	hosts := tf.f.Hosts()
	most, least := hosts[0], hosts[0]
	for _, h := range hosts {
		if len(h.Tenants()) > len(most.Tenants()) {
			most = h
		}
		if len(h.Tenants()) < len(least.Tenants()) {
			least = h
		}
	}
	if most == least {
		// Perfectly balanced: still exercise the move — shuffle one
		// tenant between the first two pools.
		most, least = hosts[0], hosts[1]
	}
	names := most.Tenants()
	if len(names) == 0 {
		return nil
	}
	pick := names[0]
	for _, n := range names {
		if n < pick {
			pick = n
		}
	}
	r.res.Faults++
	ctx, cancel := context.WithTimeout(context.Background(), tenantOpTimeout)
	defer cancel()
	if err := tf.f.Migrate(ctx, pick, least.ID()); err != nil {
		r.cfg.Logf("tenant-rebalance %s → %s aborted: %v", pick, least.ID(), err)
	}
	for i := 0; i < tenantCount; i++ {
		r.tenantAudit(tf, tenantName(i))
	}
	return nil
}
