package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
)

// StepKind enumerates the moves the torture harness can make. The numeric
// values feed the schedule hash, so they are append-only: never renumber.
type StepKind uint8

const (
	// StepPut writes one workload key in its own transaction.
	StepPut StepKind = iota
	// StepPair writes both halves of a key pair in one transaction —
	// the probe for torn snapshot reads.
	StepPair
	// StepReadPrimary reads one workload key on the primary.
	StepReadPrimary
	// StepReadSecondary reads one workload key and one key pair on a
	// secondary, checking snapshot consistency against its applied LSN.
	StepReadSecondary
	// StepLZOutage toggles a single landing-zone replica (Key = replica
	// index, Aux = 1 on / 0 off). Single-replica outages stay within the
	// write quorum, so commits must keep flowing.
	StepLZOutage
	// StepQuorumLoss is a composite: all LZ replicas go dark, commits are
	// attempted (and must fail without acking), the replicas recover, and
	// a failover installs a fresh primary over the durable prefix.
	StepQuorumLoss
	// StepFeedLoss toggles drop probability on the lossy primary→XLOG
	// feed (Aux = 1 on / 0 off). Consumers must recover via gap fills.
	StepFeedLoss
	// StepFailover crashes the primary and attaches a replacement.
	StepFailover
	// StepAddSecondary attaches a new read-scale secondary (Name).
	StepAddSecondary
	// StepRemoveSecondary retires the named secondary.
	StepRemoveSecondary
	// StepPSChurn adds a page-server replica to partition 0, then kills
	// the oldest server of the partition — a crash with a warm standby.
	StepPSChurn
	// StepSplit splits partition 0's page server into two half-range
	// servers (at most once per run).
	StepSplit
	// StepXStoreOutage toggles the XStore account (Aux = 1 on / 0 off).
	// Destaging and checkpoints must defer and resume, never fail the
	// workload.
	StepXStoreOutage
	// StepBackup takes a named constant-time backup (Name).
	StepBackup
	// StepRestoreProbe restores the latest backup (Aux = 1: to the LSN
	// just past the last acked commit; 0: to end of log) and audits the
	// restored image against the oracle's history.
	StepRestoreProbe
	// StepCatchUpProbe heals every injected fault, waits for all
	// consumers to catch up to the hardened end, and audits every key on
	// the primary and every secondary.
	StepCatchUpProbe
	// StepMuxDisturb severs every pooled netmux connection mid-flight —
	// the chaos move for the multiplexed RPC fabric. In-flight calls fail
	// with ErrUnavailable, pools evict and lazily redial, and the
	// workload must carry on with no acked-write loss and no cross-paired
	// responses. Appended after StepCatchUpProbe (schedule-hash contract:
	// never renumber) and weighted only in the "mux" scenario so the
	// pinned fingerprints of older scenarios stay valid.
	StepMuxDisturb
	// StepLZDark is a self-contained flexible-quorum probe: one LZ
	// replica (Key = replica index) goes dark mid commit-burst, commits
	// must keep acking on the remaining 2-of-3 quorum, and the oracle
	// checks that every acked commit's bytes are on at least LZQuorum
	// replicas at harden time and that the straggler is reconciled (zero
	// missed bytes) before it serves reads again. Appended after
	// StepMuxDisturb (schedule-hash contract: never renumber) and
	// weighted only in the "commit" scenario so the fingerprints of
	// older scenarios stay valid.
	StepLZDark
	// StepTenantBurst is a self-contained noisy-neighbor probe on the
	// front-door fleet: tenant Key fires a write burst that overruns its
	// admission token bucket (over-budget requests must fail with
	// ErrAdmission, never ErrBackpressure), then its co-resident victim
	// tenant runs its own ops, which must all be admitted — per-tenant
	// isolation under load. Appended after StepLZDark (schedule-hash
	// contract: never renumber) and weighted only in the "tenants"
	// scenario so older fingerprints stay valid.
	StepTenantBurst
	// StepTenantMigrate live-migrates tenant Key%tenants to pool
	// Aux%pools (bumped to the next pool when that is already home).
	// Writes are injected during the live window (they exist only in the
	// XLOG tail at cutover), and when Aux has bit 2 set the source
	// cluster fails over mid-migration. Afterwards every acked write of
	// the tenant is audited at the new home — acked-write loss across a
	// cutover is the "migration" oracle violation (and exactly what the
	// chaosfault skip-log-tail plant causes). Appended after
	// StepTenantBurst; "tenants" scenario only.
	StepTenantMigrate
	// StepTenantRebalance is the pool-rebalance move: one tenant from
	// the most-crowded pool migrates to the least-crowded one, then the
	// full fleet (every tenant's acked history) is audited. Appended
	// after StepTenantMigrate; "tenants" scenario only.
	StepTenantRebalance

	numStepKinds = int(StepTenantRebalance) + 1
)

var stepNames = [numStepKinds]string{
	"put", "pair", "read-primary", "read-secondary", "lz-outage",
	"quorum-loss", "feed-loss", "failover", "add-secondary",
	"remove-secondary", "ps-churn", "split", "xstore-outage",
	"backup", "restore-probe", "catchup-probe", "mux-disturb",
	"lz-dark", "tenant-burst", "tenant-migrate", "tenant-rebalance",
}

// String names the step kind.
func (k StepKind) String() string {
	if int(k) < numStepKinds {
		return stepNames[k]
	}
	return fmt.Sprintf("step(%d)", uint8(k))
}

// Step is one move of a chaos schedule. All fields are produced by the
// deterministic generator; the runner resolves them against the live
// cluster (e.g. an ordinal to a concrete page server) at execution time.
type Step struct {
	Kind StepKind
	// Key selects a workload key (writes/reads) or an LZ replica index.
	Key int
	// Aux is a kind-specific scalar: pair index, secondary ordinal,
	// on/off flag, or restore-target selector.
	Aux int
	// Name is a generated identity: secondary name or backup name.
	Name string
}

// Spec is a scenario: a name plus per-kind selection weights. A zero
// weight disables the kind entirely.
type Spec struct {
	Name    string
	Weights [numStepKinds]int
}

// Scenarios returns the built-in scenario names, sorted.
func Scenarios() []string {
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var scenarios = map[string]Spec{
	// mixed is the default: a realistic blend of workload, faults, and
	// probes.
	"mixed": {Name: "mixed", Weights: [numStepKinds]int{
		StepPut: 30, StepPair: 8, StepReadPrimary: 10, StepReadSecondary: 10,
		StepLZOutage: 3, StepQuorumLoss: 1, StepFeedLoss: 3, StepFailover: 2,
		StepAddSecondary: 2, StepRemoveSecondary: 2, StepPSChurn: 2,
		StepSplit: 1, StepXStoreOutage: 2, StepBackup: 2, StepRestoreProbe: 2,
		StepCatchUpProbe: 2,
	}},
	// workload is a fault-free baseline: if this reports violations the
	// oracle itself is broken.
	"workload": {Name: "workload", Weights: [numStepKinds]int{
		StepPut: 40, StepPair: 10, StepReadPrimary: 15, StepReadSecondary: 15,
		StepAddSecondary: 1, StepCatchUpProbe: 3,
	}},
	// faults leans hard on the failure injectors with just enough
	// workload to have something to lose.
	"faults": {Name: "faults", Weights: [numStepKinds]int{
		StepPut: 15, StepPair: 5, StepReadPrimary: 5, StepReadSecondary: 5,
		StepLZOutage: 6, StepQuorumLoss: 3, StepFeedLoss: 6, StepFailover: 5,
		StepAddSecondary: 3, StepRemoveSecondary: 3, StepPSChurn: 4,
		StepSplit: 1, StepXStoreOutage: 4, StepCatchUpProbe: 3,
	}},
	// pitr exercises the backup/restore path continuously.
	"pitr": {Name: "pitr", Weights: [numStepKinds]int{
		StepPut: 25, StepPair: 5, StepReadPrimary: 5, StepReadSecondary: 3,
		StepFailover: 1, StepFeedLoss: 2,
		StepBackup: 8, StepRestoreProbe: 8, StepCatchUpProbe: 2,
	}},
	// commit tortures the adaptive group-commit path: heavy single-key
	// commit traffic with frequent one-replica LZ darkness mid-burst
	// (StepLZDark), plus feed loss so one-way harden acks get dropped and
	// the retransmit path earns its keep. New scenario on purpose —
	// adding StepLZDark to an existing scenario would shift its pinned
	// schedule fingerprints.
	"commit": {Name: "commit", Weights: [numStepKinds]int{
		StepPut: 40, StepPair: 6, StepReadPrimary: 8, StepReadSecondary: 6,
		StepLZDark: 8, StepFeedLoss: 2, StepFailover: 1,
		StepCatchUpProbe: 3,
	}},
	// tenants tortures the multi-tenant front door: noisy-neighbor
	// bursts against per-tenant admission, live migrations with writes
	// in flight (some racing a source failover), and pool rebalances,
	// interleaved with the single-cluster workload so the main oracle
	// keeps judging alongside the fleet audits. New scenario on purpose
	// — adding the tenant kinds to an existing scenario would shift its
	// pinned schedule fingerprints.
	"tenants": {Name: "tenants", Weights: [numStepKinds]int{
		StepPut: 20, StepPair: 5, StepReadPrimary: 8, StepReadSecondary: 5,
		StepTenantBurst: 8, StepTenantMigrate: 6, StepTenantRebalance: 3,
		StepFailover: 1, StepCatchUpProbe: 2,
	}},
	// mux tortures the netmux RPC fabric: heavy read/write traffic with
	// frequent mid-flight connection severing, plus the usual fault blend
	// so pool redials race failovers and churn. New scenario on purpose —
	// adding StepMuxDisturb to an existing scenario would shift its
	// pinned schedule fingerprints.
	"mux": {Name: "mux", Weights: [numStepKinds]int{
		StepPut: 25, StepPair: 8, StepReadPrimary: 12, StepReadSecondary: 12,
		StepMuxDisturb: 10, StepFeedLoss: 2, StepFailover: 2,
		StepAddSecondary: 2, StepRemoveSecondary: 2, StepPSChurn: 2,
		StepCatchUpProbe: 3,
	}},
}

// Scenario resolves a scenario by name ("" = "mixed").
func Scenario(name string) (Spec, error) {
	if name == "" {
		name = "mixed"
	}
	s, ok := scenarios[name]
	if !ok {
		return Spec{}, fmt.Errorf("chaos: unknown scenario %q (have %v)", name, Scenarios())
	}
	return s, nil
}

// Workload geometry. Small keyspaces on purpose: collisions and
// overwrites are where version chains, snapshot reads, and replay get
// interesting.
const (
	numKeys  = 48 // single-key workload keys c000..c047
	numPairs = 8  // pair keys pa00/pb00..pa07/pb07

	// Fault windows are bounded so the system is never left broken for
	// unboundedly long: the generator force-closes each window after this
	// many steps.
	maxOutageWindow = 8

	// Tenant-fleet geometry for the "tenants" scenario: a lazily booted
	// front-door deployment of tenantCount tenants round-robined over
	// tenantPools clusters, living beside the main chaos cluster.
	tenantPools = 2
	tenantCount = 4
)

// generator produces the deterministic step stream for one (seed,
// scenario). It never observes the live cluster: every choice flows from
// the rng plus a shadow model of the topology it has built so far, which
// is what makes the schedule a pure function of the seed.
type generator struct {
	rng  *rand.Rand
	spec Spec

	// shadow topology model
	secondaries []string
	secSeq      int
	lzOut       int // replica index currently dark, -1 = none
	lzOutAge    int
	feedLoss    bool
	feedAge     int
	xstoreOut   bool
	xsAge       int
	split       bool
	backups     int
}

func newGenerator(seed int64, spec Spec) *generator {
	return &generator{
		rng:         rand.New(rand.NewSource(seed)),
		spec:        spec,
		secondaries: []string{"sec-0"}, // the cluster boots with one
		lzOut:       -1,
	}
}

// eligible reports whether kind may be scheduled given the shadow model.
func (g *generator) eligible(k StepKind) bool {
	switch k {
	case StepReadSecondary, StepRemoveSecondary:
		return len(g.secondaries) > 0
	case StepLZOutage, StepLZDark:
		return g.lzOut == -1 // one dark replica at a time: quorum holds
	case StepQuorumLoss, StepFailover:
		// A new primary's boot reads pages through the page servers; an
		// XStore outage could fail a read-through miss, so failovers wait
		// for the store to heal.
		return !g.xstoreOut
	case StepFeedLoss:
		return !g.feedLoss
	case StepXStoreOutage:
		return !g.xstoreOut
	case StepPSChurn, StepSplit, StepBackup, StepRestoreProbe:
		// These checkpoint/snapshot/restore against XStore.
		if g.xstoreOut {
			return false
		}
		if k == StepSplit {
			return !g.split
		}
		if k == StepPSChurn {
			// Churn targets partition 0's elder; after a split the elder
			// serves only half a range and killing it would leave that
			// half-range selector empty — permanent read failures, not a
			// consistency finding.
			return !g.split
		}
		if k == StepRestoreProbe {
			return g.backups > 0
		}
		return true
	default:
		return true
	}
}

// Next produces the next step of the schedule. The stream is infinite;
// the runner stops when its step budget or wall-clock bound runs out.
func (g *generator) Next() Step {
	// Force-close aged fault windows first, so no injected fault outlives
	// its bound regardless of what the dice do.
	if g.lzOut >= 0 {
		g.lzOutAge++
		if g.lzOutAge >= maxOutageWindow {
			s := Step{Kind: StepLZOutage, Key: g.lzOut, Aux: 0}
			g.lzOut, g.lzOutAge = -1, 0
			return s
		}
	}
	if g.feedLoss {
		g.feedAge++
		if g.feedAge >= maxOutageWindow {
			g.feedLoss, g.feedAge = false, 0
			return Step{Kind: StepFeedLoss, Aux: 0}
		}
	}
	if g.xstoreOut {
		g.xsAge++
		if g.xsAge >= maxOutageWindow {
			g.xstoreOut, g.xsAge = false, 0
			return Step{Kind: StepXStoreOutage, Aux: 0}
		}
	}

	total := 0
	for k := 0; k < numStepKinds; k++ {
		if g.spec.Weights[k] > 0 && g.eligible(StepKind(k)) {
			total += g.spec.Weights[k]
		}
	}
	r := g.rng.Intn(total)
	kind := StepKind(0)
	for k := 0; k < numStepKinds; k++ {
		if g.spec.Weights[k] == 0 || !g.eligible(StepKind(k)) {
			continue
		}
		r -= g.spec.Weights[k]
		if r < 0 {
			kind = StepKind(k)
			break
		}
	}

	switch kind {
	case StepPut:
		return Step{Kind: StepPut, Key: g.rng.Intn(numKeys)}
	case StepPair:
		return Step{Kind: StepPair, Aux: g.rng.Intn(numPairs)}
	case StepReadPrimary:
		return Step{Kind: StepReadPrimary, Key: g.rng.Intn(numKeys)}
	case StepReadSecondary:
		return Step{
			Kind: StepReadSecondary,
			Key:  g.rng.Intn(numKeys),
			Aux:  g.rng.Intn(numPairs),
			Name: g.secondaries[g.rng.Intn(len(g.secondaries))],
		}
	case StepLZOutage:
		g.lzOut, g.lzOutAge = g.rng.Intn(3), 0
		return Step{Kind: StepLZOutage, Key: g.lzOut, Aux: 1}
	case StepQuorumLoss:
		// The composite restores all replicas itself, healing any
		// single-replica window in passing.
		g.lzOut, g.lzOutAge = -1, 0
		return Step{Kind: StepQuorumLoss, Key: g.rng.Intn(numKeys)}
	case StepFeedLoss:
		g.feedLoss, g.feedAge = true, 0
		return Step{Kind: StepFeedLoss, Aux: 1}
	case StepFailover:
		return Step{Kind: StepFailover}
	case StepAddSecondary:
		g.secSeq++
		name := fmt.Sprintf("chaos-sec-%d", g.secSeq)
		g.secondaries = append(g.secondaries, name)
		return Step{Kind: StepAddSecondary, Name: name}
	case StepRemoveSecondary:
		i := g.rng.Intn(len(g.secondaries))
		name := g.secondaries[i]
		g.secondaries = append(g.secondaries[:i], g.secondaries[i+1:]...)
		return Step{Kind: StepRemoveSecondary, Name: name}
	case StepPSChurn:
		return Step{Kind: StepPSChurn}
	case StepSplit:
		g.split = true
		return Step{Kind: StepSplit}
	case StepXStoreOutage:
		g.xstoreOut, g.xsAge = true, 0
		return Step{Kind: StepXStoreOutage, Aux: 1}
	case StepBackup:
		g.backups++
		return Step{Kind: StepBackup, Name: fmt.Sprintf("b%d", g.backups)}
	case StepRestoreProbe:
		return Step{Kind: StepRestoreProbe, Aux: g.rng.Intn(2), Name: fmt.Sprintf("b%d", g.backups)}
	case StepCatchUpProbe:
		// A catch-up probe heals everything first; reflect that in the
		// model so the generator doesn't emit stale window-closing steps.
		g.lzOut, g.lzOutAge = -1, 0
		g.feedLoss, g.feedAge = false, 0
		g.xstoreOut, g.xsAge = false, 0
		return Step{Kind: StepCatchUpProbe}
	case StepMuxDisturb:
		// Severing is instantaneous (pools lazily redial), so it opens no
		// fault window in the shadow model.
		return Step{Kind: StepMuxDisturb}
	case StepLZDark:
		// Self-contained: the runner darkens the replica, runs the commit
		// burst, heals, and reconciles within the one step, so no fault
		// window opens in the shadow model.
		return Step{Kind: StepLZDark, Key: g.rng.Intn(3)}
	case StepTenantBurst:
		// Self-contained: burst, judge, audit within the step.
		return Step{Kind: StepTenantBurst, Key: g.rng.Intn(tenantCount)}
	case StepTenantMigrate:
		// Aux bits 0-1 pick the destination pool ordinal (the runner
		// skips past the current home); bit 2 arms a source-cluster
		// failover racing the migration.
		return Step{Kind: StepTenantMigrate, Key: g.rng.Intn(tenantCount), Aux: g.rng.Intn(8)}
	case StepTenantRebalance:
		return Step{Kind: StepTenantRebalance}
	}
	return Step{Kind: StepPut, Key: 0} // unreachable
}

// scheduleHasher folds steps into an FNV-1a stream; the digest is the
// replay fingerprint of a (seed, scenario, steps) schedule.
type scheduleHasher struct{ h uint64 }

func newScheduleHasher() *scheduleHasher {
	f := fnv.New64a()
	return &scheduleHasher{h: f.Sum64()}
}

func (s *scheduleHasher) fold(st Step) {
	const prime = 1099511628211
	mix := func(b byte) { s.h = (s.h ^ uint64(b)) * prime }
	mix(byte(st.Kind))
	for _, v := range []int{st.Key, st.Aux} {
		u := uint32(int32(v))
		mix(byte(u))
		mix(byte(u >> 8))
		mix(byte(u >> 16))
		mix(byte(u >> 24))
	}
	for i := 0; i < len(st.Name); i++ {
		mix(st.Name[i])
	}
	mix(0xFF) // step terminator
}

// ScheduleHash generates (without executing) the first `steps` moves of
// the schedule for (seed, scenario) and returns their fingerprint. Two
// runs agree on this value iff they would make the same moves — the
// replayability contract behind `socrates-chaos -seed`.
func ScheduleHash(seed int64, scenario string, steps int) (uint64, error) {
	spec, err := Scenario(scenario)
	if err != nil {
		return 0, err
	}
	gen := newGenerator(seed, spec)
	h := newScheduleHasher()
	for i := 0; i < steps; i++ {
		h.fold(gen.Next())
	}
	return h.h, nil
}
