//go:build chaosfault

package chaos

import (
	"context"
	"testing"

	"socrates/internal/frontdoor"
)

// The chaosfault build plants a third bug in the front door: the
// migrator's final restore stops at the backup snapshot LSN instead of
// end-of-log (frontdoor's faultSkipLogTail), so every write acked during
// the live window — present only in the XLOG tail at cutover — vanishes
// at the destination. These tests prove the migration oracle catches it.

// TestOracleCatchesMigrationPlant drives one surgical live migration:
// seed a tenant, inject acked writes in the live window (after the bulk
// copy, before the drain), cut over, audit. The live-window writes are
// deterministically absent under the plant — they are not in the
// snapshot and the planted migrator never replays the tail — so the
// audit MUST report migration violations.
func TestOracleCatchesMigrationPlant(t *testing.T) {
	r, err := newRunner(Config{Seed: 103})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer r.close()
	tf, err := r.tenants()
	if err != nil {
		t.Fatalf("tenant fleet: %v", err)
	}

	r.oracle.SetStep(0)
	for i := 0; i < 5; i++ {
		r.tenantPut(tf, "t0")
	}
	ackedBefore := len(tf.acked["t0"])
	ctx, cancel := context.WithTimeout(context.Background(), tenantOpTimeout)
	defer cancel()
	merr := tf.f.Migrate(ctx, "t0", "h1", frontdoor.WithAfterCopy(func() {
		for i := 0; i < 5; i++ {
			r.tenantPut(tf, "t0")
		}
	}))
	if merr != nil {
		t.Fatalf("migrate: %v", merr)
	}
	if len(tf.acked["t0"]) == ackedBefore {
		t.Fatal("no write was acked during the live window; the plant had nothing to lose")
	}

	r.oracle.SetStep(1)
	r.tenantAudit(tf, "t0")
	caught := 0
	for _, v := range r.oracle.Violations() {
		t.Logf("oracle: %s", v)
		if v.Kind == "migration" {
			caught++
		}
	}
	if caught == 0 {
		t.Fatalf("oracle missed the planted skip-log-tail bug: %d live-window writes lost, 0 migration violations",
			len(tf.acked["t0"])-ackedBefore)
	}
}

// TestTenantsRunSurfacesMigrationPlant runs the full "tenants" scenario
// under the plant: the schedule's own migrations inject live-window
// writes, so the end-to-end harness must surface violations without any
// surgical help.
func TestTenantsRunSurfacesMigrationPlant(t *testing.T) {
	total := 0
	for seed := int64(11); seed <= 13; seed++ {
		res, err := Run(Config{Seed: seed, Scenario: "tenants", Steps: 120})
		if err != nil {
			t.Fatalf("seed %d: chaos run: %v", seed, err)
		}
		for _, v := range res.Violations {
			t.Logf("seed %d: %s", seed, v)
		}
		total += len(res.Violations)
	}
	if total == 0 {
		t.Fatal("no tenants-scenario run surfaced the planted skip-log-tail bug")
	}
}
