//go:build !chaosfault

package chaos

import (
	"fmt"
	"testing"
)

// requireClean fails the test on any infrastructure error or oracle
// violation, printing every violation so a failing seed is actionable.
func requireClean(t *testing.T, res *Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if t.Failed() {
		t.Logf("replay with: go run ./cmd/socrates-chaos -seed %d -scenario %s -steps %d",
			res.Seed, res.Scenario, res.Steps)
	}
}

// TestChaosQuick is the tier-1 smoke run: one seed, the mixed scenario,
// short enough for every `go test ./...` sweep.
func TestChaosQuick(t *testing.T) {
	steps := 160
	if testing.Short() {
		steps = 60
	}
	res, err := Run(Config{Seed: 1, Steps: steps})
	requireClean(t, res, err)
	if res.Acked == 0 {
		t.Fatalf("no commits acked in %d steps — the workload never ran", res.Steps)
	}
}

// TestChaosScheduleDeterministic pins the replayability contract: the
// same (seed, scenario, steps) triple always produces the same schedule,
// an executed run's fingerprint matches the precomputed one, and a
// different seed diverges.
func TestChaosScheduleDeterministic(t *testing.T) {
	h1, err := ScheduleHash(42, "mixed", 300)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ScheduleHash(42, "mixed", 300)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("same seed hashed differently: %016x vs %016x", h1, h2)
	}
	if h3, _ := ScheduleHash(43, "mixed", 300); h3 == h1 {
		t.Fatalf("seeds 42 and 43 produced the same schedule hash %016x", h1)
	}
	if h4, _ := ScheduleHash(42, "faults", 300); h4 == h1 {
		t.Fatalf("scenarios mixed and faults produced the same schedule hash %016x", h1)
	}

	const steps = 40
	res, err := Run(Config{Seed: 42, Steps: steps})
	requireClean(t, res, err)
	want, err := ScheduleHash(42, "mixed", steps)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%016x", want); res.ScheduleHash != got {
		t.Fatalf("executed schedule hash %s != precomputed %s — the run and the generator disagree",
			res.ScheduleHash, got)
	}
}

// TestChaosMuxDisturb is the tier-1 smoke for the netmux fabric: the
// "mux" scenario (the only one weighting StepMuxDisturb) severs every
// pooled connection mid-flight over and over; pools must redial, the
// client layer must retry, and the oracle must stay clean.
func TestChaosMuxDisturb(t *testing.T) {
	steps := 120
	if testing.Short() {
		steps = 50
	}
	res, err := Run(Config{Seed: 3, Scenario: "mux", Steps: steps})
	requireClean(t, res, err)
	if res.Acked == 0 {
		t.Fatalf("no commits acked in %d steps — the workload never ran", res.Steps)
	}
	if res.Faults == 0 {
		t.Fatal("mux scenario injected no faults — StepMuxDisturb never fired")
	}
}

// TestChaosCommitQuorum is the tier-1 smoke for adaptive group commit
// under flexible quorums: the "commit" scenario (the only one weighting
// StepLZDark) darkens single LZ replicas mid commit-burst over and over.
// Commits must keep acking on the surviving 2-of-3 quorum, every acked
// byte must sit on at least quorum replicas at harden time, and each
// straggler must reconcile to zero missed bytes — all judged by the
// oracle's "replication" checks inside the step.
func TestChaosCommitQuorum(t *testing.T) {
	steps := 120
	if testing.Short() {
		steps = 50
	}
	res, err := Run(Config{Seed: 5, Scenario: "commit", Steps: steps})
	requireClean(t, res, err)
	if res.Acked == 0 {
		t.Fatalf("no commits acked in %d steps — the workload never ran", res.Steps)
	}
	if res.Faults == 0 {
		t.Fatal("commit scenario injected no faults — StepLZDark never fired")
	}
}

// TestChaosTenants is the tier-1 smoke for the multi-tenant front door:
// the "tenants" scenario (the only one weighting the tenant-* steps)
// fires noisy-neighbor bursts, live migrations — some racing a source
// failover — and pool rebalances against a 2-pool, 4-tenant fleet.
// Acked writes must survive every cutover, over-budget rejections must
// be admission-typed, and victims must never starve; all judged by the
// oracle's "tenant" and "migration" checks.
func TestChaosTenants(t *testing.T) {
	steps := 120
	if testing.Short() {
		steps = 50
	}
	res, err := Run(Config{Seed: 11, Scenario: "tenants", Steps: steps})
	requireClean(t, res, err)
	if res.Acked == 0 {
		t.Fatalf("no commits acked in %d steps — the workload never ran", res.Steps)
	}
	if res.Faults == 0 {
		t.Fatal("tenants scenario injected no faults — tenant steps never fired")
	}
	if res.Probes == 0 {
		t.Fatal("tenants scenario ran no migration audits")
	}
}

// TestChaosScenarios runs every registered scenario once.
func TestChaosScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario sweep is a long test")
	}
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc, func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Seed: 7, Scenario: sc, Steps: 100})
			requireClean(t, res, err)
		})
	}
}

// TestChaosSeedMatrix is the long-haul sweep: several seeds, full mixed
// schedules, each in its own cluster.
func TestChaosSeedMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("seed matrix is a long test")
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Seed: seed, Steps: 200})
			requireClean(t, res, err)
		})
	}
}
