package chaos

import (
	"fmt"

	"socrates/internal/obs"
	"socrates/internal/page"
)

// Violation is one invariant breach found by the oracle. Any violation is
// a bug: either in the system under test or in the oracle itself — both
// demand investigation, neither is noise.
type Violation struct {
	// Step is the schedule index at which the breach was observed.
	Step int `json:"step"`
	// Kind classifies the invariant: "durability", "monotonicity",
	// "ladder", "snapshot", "torn", "phantom", "restore", "replication",
	// "stall".
	Kind string `json:"kind"`
	// Detail is the human-readable evidence.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("step %d [%s] %s", v.Step, v.Kind, v.Detail)
}

// entry is one write in a key's history, in commit order (the runner is
// sequential, so history order = commit-timestamp order = LSN order).
type entry struct {
	seq      int      // global write sequence; the value embeds it
	value    string   // the payload written
	lsn      page.LSN // commit-record LSN; 0 = never reached the log
	ts       uint64   // commit timestamp (snapshot visibility); 0 = unknown
	acked    bool     // Commit returned nil: the write is durable, full stop
	appended bool     // the commit record entered the log pipeline; it may
	// have hardened (and so may legitimately surface) even if the ack
	// never reached the client
}

// history is everything the oracle knows about one key.
type history struct {
	entries   []entry
	byValue   map[string]int // value → entry index
	lastAcked int            // index of the newest acked entry, -1 = none
}

// Oracle is the harness's judge: it records every write the workload
// makes and every value any tier ever shows back, and checks three
// invariant families — durability (no acked write is ever lost),
// watermark monotonicity and ladder ordering, and snapshot consistency
// on secondaries and restored images.
//
// The oracle is not safe for concurrent use; the runner serializes all
// calls (background tier activity is still concurrent — the oracle only
// observes through reads, which are linearization points it controls).
type Oracle struct {
	keys map[string]*history
	// secView tracks, per secondary and key, the newest history index the
	// secondary has shown — secondary visibility must never move backwards.
	secView map[string]map[string]int
	// prevWM remembers each watermark's last observed value for the
	// non-regression check.
	prevWM map[string]uint64

	wms *obs.WatermarkSet
	// lzHardened reads the landing zone's authoritative hardened end —
	// the ceiling no promoted watermark may pierce. Live (not snapshotted)
	// because the published hardened watermark can lag reality across a
	// primary crash, while the LZ itself cannot.
	lzHardened func() page.LSN

	step       int
	violations []Violation
}

// NewOracle builds an oracle over the deployment's watermark set and the
// landing zone's hardened-end reader.
func NewOracle(wms *obs.WatermarkSet, lzHardened func() page.LSN) *Oracle {
	return &Oracle{
		keys:       make(map[string]*history),
		secView:    make(map[string]map[string]int),
		prevWM:     make(map[string]uint64),
		wms:        wms,
		lzHardened: lzHardened,
	}
}

// SetStep tells the oracle which schedule index subsequent evidence
// belongs to.
func (o *Oracle) SetStep(i int) { o.step = i }

// Violations returns every breach found so far.
func (o *Oracle) Violations() []Violation { return o.violations }

func (o *Oracle) flag(kind, format string, args ...any) {
	o.violations = append(o.violations, Violation{
		Step: o.step, Kind: kind, Detail: fmt.Sprintf(format, args...),
	})
}

// Report files a violation found by the runner itself (catch-up stalls,
// restore infrastructure failures) so it lands in the same evidence
// stream as the oracle's own findings.
func (o *Oracle) Report(kind, detail string) {
	o.violations = append(o.violations, Violation{Step: o.step, Kind: kind, Detail: detail})
}

func (o *Oracle) hist(key string) *history {
	h, ok := o.keys[key]
	if !ok {
		h = &history{byValue: make(map[string]int), lastAcked: -1}
		o.keys[key] = h
	}
	return h
}

// RecordWrite logs the outcome of one commit attempt for key. ts is the
// commit timestamp (the primary's visible timestamp right after the ack);
// 0 for writes that never committed.
func (o *Oracle) RecordWrite(key, value string, seq int, lsn page.LSN, ts uint64, acked bool) {
	h := o.hist(key)
	h.entries = append(h.entries, entry{
		seq: seq, value: value, lsn: lsn, ts: ts, acked: acked, appended: lsn != 0,
	})
	h.byValue[value] = len(h.entries) - 1
	if acked {
		h.lastAcked = len(h.entries) - 1
	}
}

// DropSecondary forgets the per-secondary visibility floor (the name may
// be reused by a future secondary, which starts fresh).
func (o *Oracle) DropSecondary(name string) { delete(o.secView, name) }

// ObservePrimary judges one read on the primary: the value must be a
// write the workload actually made, at least as new as the newest acked
// write, and must have reached the log (a value that failed before its
// commit record was appended can never legitimately surface).
func (o *Oracle) ObservePrimary(key, value string, found bool) {
	h, ok := o.keys[key]
	if !ok || len(h.entries) == 0 {
		if found {
			o.flag("phantom", "primary: key %q shows %q but was never written", key, value)
		}
		return
	}
	if !found {
		if h.lastAcked >= 0 {
			o.flag("durability", "primary: key %q missing; acked write %q (lsn %d) lost",
				key, h.entries[h.lastAcked].value, h.entries[h.lastAcked].lsn)
		}
		return
	}
	idx, known := h.byValue[value]
	if !known {
		o.flag("phantom", "primary: key %q shows %q, not in its write history", key, value)
		return
	}
	e := h.entries[idx]
	if !e.appended {
		o.flag("durability",
			"primary: key %q shows %q, whose commit never reached the log", key, value)
	}
	if idx < h.lastAcked {
		o.flag("durability",
			"primary: key %q shows %q (seq %d) older than acked %q (seq %d, lsn %d)",
			key, value, e.seq, h.entries[h.lastAcked].value,
			h.entries[h.lastAcked].seq, h.entries[h.lastAcked].lsn)
	}
}

// ObserveSecondary judges one read on a secondary. visBefore is the
// secondary's published visible commit timestamp sampled before the read;
// appliedAfter is its applied LSN sampled after. The secondary must show
// every committed write whose timestamp is at or below visBefore
// (visibility floor — pure snapshot-isolation arithmetic, no apply-timing
// reasoning), must not show any write above appliedAfter (it cannot see
// log it has not applied), and must never show an older value than it
// previously showed for the key (per-key visibility is monotone on one
// node).
func (o *Oracle) ObserveSecondary(sec, key, value string, found bool, visBefore uint64, appliedAfter page.LSN) {
	h, ok := o.keys[key]
	if !ok || len(h.entries) == 0 {
		if found {
			o.flag("phantom", "%s: key %q shows %q but was never written", sec, key, value)
		}
		return
	}
	// Visibility floor: the newest committed entry whose timestamp the
	// secondary had already published as visible before the read began.
	floor := -1
	for i, e := range h.entries {
		if e.ts != 0 && e.ts <= visBefore {
			floor = i
		}
	}
	if !found {
		if floor >= 0 {
			o.flag("snapshot",
				"%s: key %q missing though %q (ts %d) is within its visible ts %d",
				sec, key, h.entries[floor].value, h.entries[floor].ts, visBefore)
		}
		return
	}
	idx, known := h.byValue[value]
	if !known {
		o.flag("phantom", "%s: key %q shows %q, not in its write history", sec, key, value)
		return
	}
	e := h.entries[idx]
	if !e.appended || e.lsn == 0 {
		o.flag("snapshot",
			"%s: key %q shows %q, whose commit never reached the log", sec, key, value)
		return
	}
	if e.lsn.After(appliedAfter) {
		o.flag("snapshot",
			"%s: key %q shows %q (lsn %d) beyond its applied LSN %d — read from the future",
			sec, key, value, e.lsn, appliedAfter)
	}
	if idx < floor {
		o.flag("snapshot",
			"%s: key %q shows %q (seq %d) though %q (ts %d ≤ visible %d) must be visible",
			sec, key, value, e.seq, h.entries[floor].value, h.entries[floor].ts, visBefore)
	}
	view, ok := o.secView[sec]
	if !ok {
		view = make(map[string]int)
		o.secView[sec] = view
	}
	if prev, ok := view[key]; ok && idx < prev {
		o.flag("snapshot",
			"%s: key %q went backwards: %q (seq %d) after showing seq %d",
			sec, key, value, e.seq, h.entries[prev].seq)
	}
	if prev, ok := view[key]; !ok || idx > prev {
		view[key] = idx
	}
}

// ObservePair judges one paired read (both halves read in a single
// snapshot transaction): if both halves are present their sequence
// numbers must match — the two are written only together, in one
// transaction, so a mismatch is a torn snapshot.
func (o *Oracle) ObservePair(node string, aSeq, bSeq int, aFound, bFound bool) {
	if aFound != bFound {
		o.flag("torn", "%s: pair half missing (a=%v b=%v) — halves are only ever written together",
			node, aFound, bFound)
		return
	}
	if aFound && aSeq != bSeq {
		o.flag("torn", "%s: pair shows seq %d / %d from different transactions", node, aSeq, bSeq)
	}
}

// ObserveRestored judges one read on a point-in-time-restored engine.
// target is the restore's exclusive LSN bound (0 = end of log). The
// image must contain, for each key, a value at least as new as the
// newest acked write strictly below target, and nothing at or above
// target.
func (o *Oracle) ObserveRestored(key, value string, found bool, target page.LSN) {
	h, ok := o.keys[key]
	if !ok || len(h.entries) == 0 {
		if found {
			o.flag("phantom", "restore: key %q shows %q but was never written", key, value)
		}
		return
	}
	below := func(l page.LSN) bool {
		return l != 0 && (target == 0 || l.Before(target))
	}
	// Expectation floor: newest acked entry below target.
	floor := -1
	for i, e := range h.entries {
		if e.acked && below(e.lsn) {
			floor = i
		}
	}
	if !found {
		if floor >= 0 {
			o.flag("restore",
				"restore@%d: key %q missing; acked %q (lsn %d) below target lost",
				target, key, h.entries[floor].value, h.entries[floor].lsn)
		}
		return
	}
	idx, known := h.byValue[value]
	if !known {
		o.flag("phantom", "restore@%d: key %q shows %q, not in its write history", target, key, value)
		return
	}
	e := h.entries[idx]
	if !e.appended || !below(e.lsn) {
		o.flag("restore",
			"restore@%d: key %q shows %q (lsn %d) at or beyond the restore target",
			target, key, value, e.lsn)
		return
	}
	if idx < floor {
		o.flag("restore",
			"restore@%d: key %q shows %q (seq %d) older than acked %q (lsn %d) below target",
			target, key, value, e.seq, h.entries[floor].value, h.entries[floor].lsn)
	}
}

// CheckLadder audits the watermark ladder: every watermark must be
// monotone over time, and the rungs must stay ordered —
//
//	truncated ≤ destaged ≤ promoted ≤ LZ hardened end
//	archived ≤ promoted
//	applied(page server) ≤ promoted      (can't apply log never served)
//	applied(secondary)   ≤ promoted
//	checkpoint(ps)       ≤ applied(ps)   (can't checkpoint the future)
//
// Cross-rung comparisons double-check by re-reading the upper rung, so a
// torn read of two independently-advancing atomics never reports a false
// violation (all rungs are monotone, so "still violated after re-read"
// is proof).
func (o *Oracle) CheckLadder() {
	for _, st := range o.wms.Snapshot() {
		k := st.Name
		if st.Replica != "" {
			k += "/" + st.Replica
		}
		if prev, ok := o.prevWM[k]; ok && st.LSN < prev {
			o.flag("monotonicity", "watermark %s regressed %d → %d", k, prev, st.LSN)
		}
		o.prevWM[k] = st.LSN
	}

	wm := func(name, replica string) uint64 {
		return o.wms.Watermark(name, replica).Value()
	}
	// check asserts lower ≤ upper with a re-read of upper on apparent
	// violation (upper may have been sampled before lower advanced past
	// it; both only grow).
	check := func(lname, lrep, uname, urep string) {
		lo := wm(lname, lrep)
		if lo <= wm(uname, urep) {
			return
		}
		if lo <= wm(uname, urep) { // re-read: still violated?
			return
		}
		o.flag("ladder", "%s/%s=%d exceeds %s/%s=%d",
			lname, lrep, lo, uname, urep, wm(uname, urep))
	}

	// promoted ≤ the LZ's authoritative hardened end (the published
	// hardened watermark can lag across a primary crash; the LZ cannot).
	promoted := wm(obs.WMPromoted, "")
	if hard := uint64(o.lzHardened()); promoted > hard {
		if hard2 := uint64(o.lzHardened()); promoted > hard2 {
			o.flag("ladder", "xlog promoted %d beyond LZ hardened end %d", promoted, hard2)
		}
	}
	check(obs.WMDestaged, "", obs.WMPromoted, "")
	check(obs.WMTruncated, "", obs.WMDestaged, "")
	check(obs.WMArchived, "", obs.WMPromoted, "")
	for _, rep := range o.wms.Replicas(obs.WMApplied) {
		check(obs.WMApplied, rep, obs.WMPromoted, "")
		check(obs.WMCheckpoint, rep, obs.WMApplied, rep)
	}
	for _, rep := range o.wms.Replicas(obs.WMSecondary) {
		check(obs.WMSecondary, rep, obs.WMPromoted, "")
	}
}

// AckedWrites reports how many writes were acked across all keys.
func (o *Oracle) AckedWrites() int {
	n := 0
	for _, h := range o.keys {
		for _, e := range h.entries {
			if e.acked {
				n++
			}
		}
	}
	return n
}
