package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"socrates/internal/netmux"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/simdisk"
)

// MuxRow is the result of the "mux" experiment: the same GetPage@LSN
// read storm over the same TCP sockets, once on the sequential v2
// transport (one request in flight per connection — the pre-mux stack)
// and once on the netmux v3 fabric (request-ID multiplexing + the
// compute-side coalescer). The paper's remote page reads cross a real
// network, so the benchmark pins a simulated RTT well above loopback.
type MuxRow struct {
	RTTMicros      int64   `json:"rtt_us"`
	Readers        int     `json:"readers"`
	Conns          int     `json:"conns"`
	SeqOps         int64   `json:"seq_v2_ops"`
	MuxOps         int64   `json:"mux_v3_ops"`
	SeqTPS         float64 `json:"seq_v2_tps"`
	MuxTPS         float64 `json:"mux_v3_tps"`
	Speedup        float64 `json:"speedup"`
	CoalesceHits   uint64  `json:"coalesce_hits"`
	CoalesceMisses uint64  `json:"coalesce_misses"`
	CoalesceHitPct float64 `json:"coalesce_hit_pct"`
}

// Geometry of the mux experiment. 32 readers over 4 sockets is the shape
// of a busy compute node warming its RBPEX from remote page servers.
const (
	muxReaders  = 32
	muxConns    = 4
	muxRTT      = 600 * time.Microsecond // simulated one-way service incl. wire RTT (≥0.5 ms)
	muxHotPages = 8                      // readers hammer a hot set, so misses coalesce
	muxOpFloor  = 64                     // minimum ops per side for a meaningful ratio
)

// Mux measures sequential-v2 vs mux-v3 GetPage@LSN throughput at a
// simulated ≥0.5 ms RTT with 32 concurrent readers.
func Mux(o Options) (MuxRow, error) {
	o = o.defaults()
	row := MuxRow{RTTMicros: muxRTT.Microseconds(), Readers: muxReaders, Conns: muxConns}

	// One page-server-shaped endpoint: every GetPage costs the simulated
	// RTT (parked, not spun — see simdisk.SleepPrecise) and returns a
	// fixed image. The server speaks per-frame v1/v2/v3, so BOTH stacks
	// talk to the very same listener.
	image := make([]byte, 2048)
	srv, err := rbio.ServeTCP("127.0.0.1:0", func(_ context.Context, req *rbio.Request) *rbio.Response {
		simdisk.SleepPrecise(muxRTT)
		resp := rbio.Ok()
		resp.LSN = req.LSN
		resp.Payload = image
		return resp
	})
	if err != nil {
		return row, err
	}
	defer srv.Close()

	// drive runs muxReaders goroutines hammering op() for the window and
	// returns completed ops. Reader r sends page hot[r%muxHotPages]
	// + a rotating tail so the access pattern has both coalescable and
	// unique requests.
	drive := func(op func(ctx context.Context, id page.ID) error) (int64, error) {
		var ops atomic.Int64
		var firstErr atomic.Value
		deadline := time.Now().Add(o.Measure)
		var wg sync.WaitGroup
		for r := 0; r < muxReaders; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(r) + 1))
				for time.Now().Before(deadline) {
					id := page.ID(rng.Intn(muxHotPages))
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					err := op(ctx, id)
					cancel()
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					ops.Add(1)
				}
			}(r)
		}
		wg.Wait()
		if e := firstErr.Load(); e != nil {
			return ops.Load(), e.(error)
		}
		return ops.Load(), nil
	}

	// --- Sequential v2: the pre-mux stack. muxConns sockets, one
	// request in flight per socket, readers round-robin across them.
	seqConns := make([]rbio.Conn, muxConns)
	for i := range seqConns {
		c, err := rbio.DialTCP(srv.Addr())
		if err != nil {
			return row, err
		}
		defer c.Close()
		seqConns[i] = c
	}
	var rr atomic.Uint64
	seqStart := time.Now()
	seqOps, err := drive(func(ctx context.Context, id page.ID) error {
		conn := seqConns[rr.Add(1)%muxConns]
		_, err := conn.Call(ctx, &rbio.Request{Version: 2, Type: rbio.MsgGetPage, Page: id, LSN: 1})
		return err
	})
	seqElapsed := time.Since(seqStart)
	if err != nil {
		return row, fmt.Errorf("sequential v2 side: %w", err)
	}

	// --- Mux v3: the netmux fabric as compute runs it — a pool of
	// muxConns multiplexed sockets behind the GetPage coalescer.
	m := netmux.NewMetrics(obs.NewRegistry())
	pool := netmux.NewPool(srv.Addr(), func(addr string) (rbio.Conn, error) {
		return netmux.DialTCP(addr, m)
	}, netmux.Options{Conns: muxConns, MaxInflight: muxReaders * 2, Metrics: m})
	defer pool.Close()
	coal := netmux.NewCoalescer(m)
	muxStart := time.Now()
	muxOps, err := drive(func(ctx context.Context, id page.ID) error {
		_, _, err := coal.Do(ctx, id, 1, func() (*rbio.Response, error) {
			return pool.Call(ctx, &rbio.Request{Version: rbio.Version, Type: rbio.MsgGetPage, Page: id, LSN: 1})
		})
		return err
	})
	muxElapsed := time.Since(muxStart)
	if err != nil {
		return row, fmt.Errorf("mux v3 side: %w", err)
	}

	if seqOps < muxOpFloor || muxOps < muxOpFloor {
		return row, fmt.Errorf("window too small: %d sequential / %d mux ops (want ≥%d each); raise -measure",
			seqOps, muxOps, muxOpFloor)
	}

	row.SeqOps, row.MuxOps = seqOps, muxOps
	row.SeqTPS = float64(seqOps) / seqElapsed.Seconds()
	row.MuxTPS = float64(muxOps) / muxElapsed.Seconds()
	row.Speedup = row.MuxTPS / row.SeqTPS
	row.CoalesceHits = m.CoalesceHits.Value()
	row.CoalesceMisses = m.CoalesceMiss.Value()
	if total := row.CoalesceHits + row.CoalesceMisses; total > 0 {
		row.CoalesceHitPct = 100 * float64(row.CoalesceHits) / float64(total)
	}
	return row, nil
}
