package experiments

import (
	"testing"
	"time"
)

// quick returns options small enough for unit tests; the bench suite runs
// the full windows.
func quick() Options {
	return Options{
		Measure: 250 * time.Millisecond,
		WarmUp:  50 * time.Millisecond,
		SF:      400,
		Threads: 8,
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	h, s, err := Table2(quick())
	if err != nil {
		t.Fatal(err)
	}
	if h.TotalTPS <= 0 || s.TotalTPS <= 0 {
		t.Fatalf("zero throughput: %+v %+v", h, s)
	}
	// Reads dominate writes on both (default mix), and both systems commit
	// writes (a zero write rate would mean a poisoned engine).
	if h.WriteTPS <= 0 || s.WriteTPS <= 0 {
		t.Fatalf("no writes: %+v %+v", h, s)
	}
	if h.ReadTPS < h.WriteTPS || s.ReadTPS < s.WriteTPS {
		t.Fatalf("mix shape wrong: %+v %+v", h, s)
	}
	// The paper's shape: the two systems are comparable, HADR typically a
	// bit ahead (100% local hits vs remote misses). Allow generous noise
	// at the tiny test scale.
	if s.TotalTPS > h.TotalTPS*3 || h.TotalTPS > s.TotalTPS*8 {
		t.Fatalf("throughputs diverged: socrates %.0f vs hadr %.0f", s.TotalTPS, h.TotalTPS)
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	row, err := Table3(quick())
	if err != nil {
		t.Fatal(err)
	}
	if row.CacheRatio < 0.10 || row.CacheRatio > 0.20 {
		t.Fatalf("cache ratio = %.2f, want ~0.15", row.CacheRatio)
	}
	// Paper: 52% hit at 15% cache. Shape: well above the cache ratio,
	// below perfect.
	if row.HitPct < 25 || row.HitPct > 98 {
		t.Fatalf("hit rate = %.1f%%, want skew-boosted rate", row.HitPct)
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	row, err := Table4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if row.CacheRatio > 0.05 {
		t.Fatalf("cache ratio = %.3f, want ~0.013", row.CacheRatio)
	}
	// Paper: 32% at ~1% cache — far above the cache fraction.
	if row.HitPct < 10 {
		t.Fatalf("hit rate = %.1f%% at %.1f%% cache; skew not effective",
			row.HitPct, row.CacheRatio*100)
	}
}

// TestTable5Shape asserts Table 5's mechanism on deterministic work
// accounting, not on a wall-clock throughput race (the old form — two
// separately-timed MB/s rates compared against each other — inverted on
// loaded machines and spent PR 6..8 gated behind SOCRATES_TABLE5=1).
// Both systems now commit the same fixed transaction count; the shape
// claims are functions of that work:
//   - HADR's log production is coupled to backup egress: the fixed work
//     overruns the lag budget by construction, so the throttle MUST have
//     engaged, on any machine, at any load.
//   - Socrates commits the identical work with its log decoupled from
//     backups (snapshot backups; no egress throttle exists on its path).
//   - Both systems produce comparable log volume for identical work, so
//     the rates the bench reports are measuring the same bytes.
func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	o := quick()
	h, s, err := Table5(o)
	if err != nil {
		t.Fatal(err)
	}
	work := table5Work(o)
	// The drive is work-bounded and credits aborted attempts back to the
	// budget: both systems must have committed exactly the fixed work.
	if h.Commits != work || s.Commits != work {
		t.Fatalf("fixed work did not complete: HADR %d, Socrates %d of %d commits",
			h.Commits, s.Commits, work)
	}
	if h.LogBytes <= 0 || s.LogBytes <= 0 {
		t.Fatalf("no log produced: %+v %+v", h, s)
	}
	// Calibration guard: the fixed work must overrun the HADR lag budget
	// many times over, or the throttle claim below proves nothing.
	if h.LogBytes < table5LagBudget*4 {
		t.Fatalf("HADR log volume %d B too small against lag budget %d B; raise table5Work",
			h.LogBytes, int(table5LagBudget))
	}
	// The headline mechanism: HADR throttled on backup egress while
	// committing the work; Socrates has no such coupling to engage.
	if h.Throttles == 0 {
		t.Fatalf("HADR backup-egress throttle never engaged over %d commits / %d log bytes; Table 5 shape lost",
			h.Commits, h.LogBytes)
	}
	if s.Throttles != 0 {
		t.Fatalf("Socrates log path reported %d backup throttles; commit/backup decoupling lost", s.Throttles)
	}
	// Identical work, shared WAL encoding: log volumes must be in the
	// same ballpark (guards against one side silently dropping records).
	if s.LogBytes > h.LogBytes*2 || h.LogBytes > s.LogBytes*2 {
		t.Fatalf("log volumes diverged for identical work: HADR %d B, Socrates %d B",
			h.LogBytes, s.LogBytes)
	}
}

func TestTable6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	xio, dd, err := Table6(quick())
	if err != nil {
		t.Fatal(err)
	}
	if xio.Stats.Count == 0 || dd.Stats.Count == 0 {
		t.Fatal("no latency samples")
	}
	// Paper: DD median ~4x lower than XIO.
	ratio := float64(xio.Stats.Median) / float64(dd.Stats.Median)
	if ratio < 2 {
		t.Fatalf("XIO/DD median ratio = %.1f, want >= 2 (paper ~4x)", ratio)
	}
	if dd.Stats.Min >= xio.Stats.Min {
		t.Fatalf("DD min %.0fus >= XIO min %.0fus",
			float64(dd.Stats.Min.Microseconds()), float64(xio.Stats.Min.Microseconds()))
	}
}

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	points, err := Figure4(quick(), []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	byService := map[string][]CurvePoint{}
	for _, p := range points {
		byService[p.Service] = append(byService[p.Service], p)
	}
	for svc, ps := range byService {
		if len(ps) != 3 {
			t.Fatalf("%s: %d points", svc, len(ps))
		}
		// Throughput grows with threads (group commit).
		if ps[2].TPS <= ps[0].TPS {
			t.Fatalf("%s: TPS did not scale with threads: %+v", svc, ps)
		}
	}
	// DD beats XIO at low thread counts.
	if byService["DD"][0].TPS <= byService["XIO"][0].TPS {
		t.Fatalf("DD single-thread TPS %.0f <= XIO %.0f",
			byService["DD"][0].TPS, byService["XIO"][0].TPS)
	}
}

func TestTable7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	xio, dd, err := Table7(quick(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// XIO needs at least as many threads and burns more CPU per MB/s.
	if xio.Threads < dd.Threads {
		t.Fatalf("XIO threads %d < DD threads %d", xio.Threads, dd.Threads)
	}
	xioEff := xio.CPUPct / xio.LogMBps
	ddEff := dd.CPUPct / dd.LogMBps
	if xioEff <= ddEff {
		t.Fatalf("XIO CPU per MB/s (%.2f) <= DD (%.2f); Table 7 shape lost", xioEff, ddEff)
	}
}

func TestFlightOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := FlightOverhead(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.EnabledTPS <= 0 || r.DisabledTPS <= 0 {
		t.Fatalf("zero throughput: %+v", r)
	}
	// The enabled arm must actually have been observing: flight events
	// recorded and the LSN ladder populated (commit, hardened, promoted,
	// destaged, archived, truncated, applied, checkpoint at minimum).
	if r.Events == 0 {
		t.Fatalf("flight recorder recorded nothing: %+v", r)
	}
	if r.Watermarks < 5 {
		t.Fatalf("watermark ladder too sparse (%d names): %+v", r.Watermarks, r)
	}
	// No threshold on OverheadPct: run-to-run noise at test scale exceeds
	// the 5% budget; the committed BENCH_pr3.json tracks the real number.
}

func TestTable1Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	rows, err := Table1(Options{Measure: 200 * time.Millisecond,
		WarmUp: 50 * time.Millisecond, SF: 400, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Metric == "" || r.HADR == "" || r.Socrates == "" {
			t.Fatalf("incomplete row %+v", r)
		}
	}
}

// TestCommitShape pins the direction of the commit-path A/B at test scale.
// p99 is a tail statistic — at a 250 ms window the baseline's quorum-tail
// stalls are a Poisson handful and the quantile is noise — so the test
// asserts the stable signals: the adaptive arm's median commit beats the
// round-trip baseline's (flexible 2-of-3 quorum + no fixed hold window),
// and the coalescer did real work. The >=2x p99 target is asserted on
// quiet hosts via `make bench-commit` (BENCH_pr9.json).
func TestCommitShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := Commit(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.BaseOps <= 0 || r.AdaptOps <= 0 {
		t.Fatalf("no commits: %+v", r)
	}
	if r.AdaptP50Us >= r.BaseP50Us {
		t.Fatalf("adaptive median %dus >= baseline %dus; commit-path win lost", r.AdaptP50Us, r.BaseP50Us)
	}
	if r.AdaptCoalesced == 0 {
		t.Fatalf("coalescer never engaged under the MaxLog mix: %+v", r)
	}
	if r.BaseQuorum != 3 || r.AdaptQuorum != 2 {
		t.Fatalf("quorum configuration drifted: %+v", r)
	}
}

func TestMuxShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	r, err := Mux(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.SeqTPS <= 0 || r.MuxTPS <= 0 {
		t.Fatalf("zero throughput: %+v", r)
	}
	// The full >=3x target is asserted on quiet hosts via `make bench-mux`
	// (BENCH_pr5.json); at test scale we pin the direction only.
	if r.MuxTPS <= r.SeqTPS {
		t.Fatalf("mux-v3 no faster than sequential-v2: %+v", r)
	}
	if r.CoalesceHits == 0 {
		t.Fatalf("coalescer never hit under a 32-reader hot set: %+v", r)
	}
}
