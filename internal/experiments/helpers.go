package experiments

import (
	"socrates/internal/cluster"
	"socrates/internal/engine"
	"socrates/internal/fcb"
	"socrates/internal/tpce"
	"socrates/internal/workload"
)

// scratchEngine builds a throwaway in-memory engine for sizing databases;
// the returned func reports the pages allocated so far.
func scratchEngine() (*engine.Engine, func() int) {
	e, err := engine.Create(engine.Config{
		Pages: fcb.NewMemFile(),
		Log:   engine.NewMemPipeline(),
	})
	if err != nil {
		panic("experiments: scratch engine: " + err.Error())
	}
	return e, func() int { return e.AllocatedPages() }
}

// estimateTPCEDataPages sizes a TPC-E database.
func estimateTPCEDataPages(customers int) int {
	e, pages := scratchEngine()
	w := tpce.New(customers)
	if err := w.Setup(e); err != nil {
		return 64
	}
	return pages()
}

// runTPCECache loads the TPC-E workload onto the deployment and measures
// the primary's cache hit rate.
func runTPCECache(s *cluster.Cluster, customers, dataPages, cachePages int, o Options) (CacheRow, error) {
	w := tpce.New(customers)
	if err := w.Setup(s.Primary().Engine); err != nil {
		return CacheRow{}, err
	}
	s.Primary().Pages().Cache().ResetStats()
	_ = workload.Drive(func(id int) workload.Runner {
		return w.NewClient(s.Primary().Engine, s.PrimaryMeter, id)
	}, workload.Config{
		Threads:  16,
		Duration: o.Measure,
		WarmUp:   o.WarmUp,
		Meter:    s.PrimaryMeter,
	})
	return CacheRow{
		Workload:   "TPC-E",
		DataPages:  dataPages,
		CachePages: cachePages,
		CacheRatio: float64(cachePages) / float64(dataPages),
		HitPct:     100 * s.Primary().Pages().Cache().HitRate(),
	}, nil
}
