// Package experiments regenerates every table and figure of the paper's
// evaluation (§7 and Appendix A) against the reproduction: Tables 1–7 and
// Figure 4. The root bench suite (bench_test.go) and cmd/socrates-bench
// both drive these functions; EXPERIMENTS.md records paper-vs-measured.
//
// Scaling: databases are page-count-scaled (a "1 TB" CDB database becomes a
// few thousand rows with the same cache:data ratios), latencies use the
// calibrated device profiles in simdisk, and all headline comparisons are
// ratios, which survive the scaling (see DESIGN.md).
package experiments

import (
	"fmt"
	"time"

	"socrates/internal/cdb"
	"socrates/internal/cluster"
	"socrates/internal/engine"
	"socrates/internal/hadr"
	"socrates/internal/metrics"
	"socrates/internal/simdisk"
	"socrates/internal/workload"
	"socrates/internal/xstore"
)

// Options tunes experiment cost. Defaults suit `go test -bench`.
type Options struct {
	// Measure is the measurement window per data point.
	Measure time.Duration
	// WarmUp precedes each measurement.
	WarmUp time.Duration
	// SF is the CDB scale factor (rows per scaled table).
	SF int
	// Threads is the default client thread count.
	Threads int
}

// Defaults fills unset options.
func (o Options) defaults() Options {
	if o.Measure == 0 {
		o.Measure = 1500 * time.Millisecond
	}
	if o.WarmUp == 0 {
		o.WarmUp = 400 * time.Millisecond
	}
	if o.SF == 0 {
		o.SF = 2000
	}
	if o.Threads == 0 {
		o.Threads = 64
	}
	return o
}

// --- deployment builders (real latency profiles) ---

// newSocrates builds a production-shaped Socrates deployment: XIO or DD
// landing zone, LAN fabric, local-SSD caches, HDD-backed XStore.
func newSocrates(name string, lzProfile simdisk.Profile, cores, memPages, ssdPages int) (*cluster.Cluster, error) {
	return cluster.New(cluster.Config{
		Name:            name,
		LZProfile:       lzProfile,
		LZCapacity:      32 << 20,
		ComputeMemPages: memPages,
		ComputeSSDPages: ssdPages,
		PSMemPages:      256,
		PSPullBytes:     1 << 20,
		PrimaryCores:    cores,
		CheckpointEvery: 20 * time.Millisecond,
		XStore:          xstore.Config{Profile: simdisk.HDD},
	})
}

// newHADR builds the baseline with AZ-link replication and a log backup
// whose egress is capped (its throughput ceiling, §7.4).
func newHADR(name string, cores int, backupMBps float64, lagBudget int64) (*hadr.Cluster, error) {
	cfg := hadr.Config{
		Name:           name,
		PrimaryCores:   cores,
		LogBackupEvery: 10 * time.Millisecond,
	}
	if backupMBps > 0 {
		cfg.Store = xstore.New(xstore.Config{Profile: simdisk.HDD, IngestMBps: backupMBps})
	}
	if lagBudget > 0 {
		cfg.BackupLagBudget = lagBudget
	}
	return hadr.New(cfg)
}

// driveCDB runs the mix against an engine with the generic driver.
// When cores > 0, each transaction burns its query-processing CPU through a
// cores-wide gate, making throughput CPU-bound at that core count (the
// Table 2 regime).
func driveCDB(e *engine.Engine, w *cdb.Workload, mix cdb.Mix, threads, cores int,
	meter *metrics.CPUMeter, o Options) workload.Metrics {
	var gate chan struct{}
	if cores > 0 {
		gate = make(chan struct{}, cores)
	}
	return workload.Drive(func(id int) workload.Runner {
		return cdb.Runner{C: w.NewClient(id), E: e, Mix: mix, Meter: meter, Gate: gate}
	}, workload.Config{
		Threads:  threads,
		Duration: o.Measure,
		WarmUp:   o.WarmUp,
		Meter:    meter,
	})
}

// --- Table 2: CDB default mix throughput, HADR vs Socrates ---

// ThroughputRow is one system's row in Table 2.
type ThroughputRow struct {
	System   string
	CPUPct   float64
	WriteTPS float64
	ReadTPS  float64
	TotalTPS float64
}

// Table2 runs the CDB default mix on both architectures at equal scale
// (paper: 8 cores, 64 client threads, 1 TB database).
func Table2(o Options) (hadrRow, socRow ThroughputRow, err error) {
	o = o.defaults()

	h, err := newHADR("t2-hadr", 8, 0, 64<<20)
	if err != nil {
		return hadrRow, socRow, err
	}
	defer h.Close()
	hw := cdb.New(o.SF)
	if err := hw.Setup(h.Primary().Engine()); err != nil {
		return hadrRow, socRow, err
	}
	hm := driveCDB(h.Primary().Engine(), hw, cdb.DefaultMix, o.Threads, 8, h.PrimaryMeter, o)
	hadrRow = ThroughputRow{System: "HADR", CPUPct: hm.CPUPercent,
		WriteTPS: hm.WriteTPS(), ReadTPS: hm.ReadTPS(), TotalTPS: hm.TotalTPS()}

	// Socrates: cache sized to ~15% of the database (Table 3 config).
	s, err := newSocrates("t2-soc", simdisk.XIO, 8, 48, 144)
	if err != nil {
		return hadrRow, socRow, err
	}
	defer s.Close()
	sw := cdb.New(o.SF)
	if err := sw.Setup(s.Primary().Engine); err != nil {
		return hadrRow, socRow, err
	}
	sm := driveCDB(s.Primary().Engine, sw, cdb.DefaultMix, o.Threads, 8, s.PrimaryMeter, o)
	if failed, cause := s.Primary().Engine.Failed(); failed {
		return hadrRow, socRow, fmt.Errorf("table2: socrates engine poisoned: %w", cause)
	}
	socRow = ThroughputRow{System: "Socrates", CPUPct: sm.CPUPercent,
		WriteTPS: sm.WriteTPS(), ReadTPS: sm.ReadTPS(), TotalTPS: sm.TotalTPS()}
	return hadrRow, socRow, nil
}

// --- Tables 3 & 4: cache hit rates ---

// CacheRow is one row of the cache-hit tables.
type CacheRow struct {
	Workload   string
	DataPages  int
	CachePages int
	CacheRatio float64 // cache / data
	HitPct     float64
}

// Table3 measures the Socrates primary's local cache hit rate under the
// CDB default mix with a cache ≈ 15% of the database (paper: 52%).
func Table3(o Options) (CacheRow, error) {
	o = o.defaults()
	// Estimate data pages from a scouting engine, then size the cache.
	dataPages := estimateCDBDataPages(o.SF)
	cachePages := dataPages * 15 / 100
	mem := cachePages / 4
	ssd := cachePages - mem

	s, err := newSocrates("t3-soc", simdisk.XIO, 8, mem, ssd)
	if err != nil {
		return CacheRow{}, err
	}
	defer s.Close()
	w := cdb.New(o.SF)
	if err := w.Setup(s.Primary().Engine); err != nil {
		return CacheRow{}, err
	}
	s.Primary().Pages().Cache().ResetStats()
	_ = driveCDB(s.Primary().Engine, w, cdb.DefaultMix, 16, 8, s.PrimaryMeter, o)
	return CacheRow{
		Workload:   "CDB default",
		DataPages:  dataPages,
		CachePages: cachePages,
		CacheRatio: float64(cachePages) / float64(dataPages),
		HitPct:     100 * s.Primary().Pages().Cache().HitRate(),
	}, nil
}

// Table4 measures the hit rate under the TPC-E-flavoured workload with a
// cache ≈ 1% of the database (paper: 32%).
func Table4(o Options) (CacheRow, error) {
	o = o.defaults()
	customers := o.SF * 3
	dataPages := estimateTPCEDataPages(customers)
	cachePages := dataPages / 75 // ≈ 1.3%, the paper's ratio
	if cachePages < 4 {
		cachePages = 4
	}
	mem := cachePages / 4
	if mem < 1 {
		mem = 1
	}
	ssd := cachePages - mem

	s, err := newSocrates("t4-soc", simdisk.XIO, 8, mem, ssd)
	if err != nil {
		return CacheRow{}, err
	}
	defer s.Close()
	// TPC-E workload import kept local to avoid the extra dependency in
	// the builders above.
	return runTPCECache(s, customers, dataPages, cachePages, o)
}

// --- Table 5: update-heavy log throughput ---

// LogRow is one system's row in Table 5.
type LogRow struct {
	System  string
	LogMBps float64
	CPUPct  float64
	// Deterministic work accounting: the drive commits a fixed
	// transaction count instead of racing a wall-clock window, so the
	// fields below are functions of the work, not of scheduler fairness.
	// The rates above remain machine-dependent display values; the shape
	// test asserts only on these.
	Commits   int64 // write transactions committed (fixed per drive)
	LogBytes  int64 // log bytes flushed committing them
	Throttles int64 // backup-egress throttle stalls (structurally 0 for Socrates)
}

// table5LagBudget is the HADR backup lag budget for Table 5: small
// against the fixed drive's log volume, so the backup-egress throttle
// must engage on any machine — the work overruns the budget by
// construction, not by outracing a timer.
const table5LagBudget = 64 << 10

// table5Work returns the fixed write-transaction count for one Table 5
// drive: enough MaxLog commits that the produced log overruns the HADR
// backup lag budget many times over.
func table5Work(o Options) int64 {
	w := int64(o.Threads) * 40
	if w < 1200 {
		w = 1200
	}
	return w
}

// Table5 saturates both systems with the max-log CDB mix (paper: 16 cores,
// 256 clients). HADR's log production throttles on its backup egress;
// Socrates backups are XStore snapshots, so its log runs free.
//
// Both systems commit the same fixed number of MaxLog transactions
// (deterministic work accounting); elapsed time is whatever that work
// takes, which keeps the accounting columns of LogRow stable on loaded
// machines where fixed-window throughput races invert.
func Table5(o Options) (hadrRow, socRow LogRow, err error) {
	o = o.defaults()
	work := table5Work(o)
	threads := o.Threads
	drive := func(e *engine.Engine, w *cdb.Workload, meter *metrics.CPUMeter) workload.Metrics {
		var gate = make(chan struct{}, 16)
		return workload.Drive(func(id int) workload.Runner {
			return cdb.Runner{C: w.NewClient(id), E: e, Mix: cdb.MaxLogMix, Meter: meter, Gate: gate}
		}, workload.Config{
			Threads:  threads,
			Count:    work,
			Duration: 60 * time.Second, // safety bound; a tripped bound surfaces as Commits < work
			Meter:    meter,
		})
	}

	// HADR: the backup egress cap is the ceiling.
	h, err := newHADR("t5-hadr", 16, 3, table5LagBudget)
	if err != nil {
		return hadrRow, socRow, err
	}
	defer h.Close()
	hw := cdb.New(o.SF / 2)
	if err := hw.Setup(h.Primary().Engine()); err != nil {
		return hadrRow, socRow, err
	}
	_, hBefore, hThrBefore := h.Writer().Stats()
	hm := drive(h.Primary().Engine(), hw, h.PrimaryMeter)
	_, hAfter, hThrAfter := h.Writer().Stats()
	hadrRow = LogRow{System: "HADR",
		LogMBps:   mbps(hAfter-hBefore, hm.Elapsed),
		CPUPct:    h.PrimaryMeter.Utilization(),
		Commits:   hm.WriteTxns,
		LogBytes:  hAfter - hBefore,
		Throttles: hThrAfter - hThrBefore}

	s, err := newSocrates("t5-soc", simdisk.XIO, 16, 256, 512)
	if err != nil {
		return hadrRow, socRow, err
	}
	defer s.Close()
	sw := cdb.New(o.SF / 2)
	if err := sw.Setup(s.Primary().Engine); err != nil {
		return hadrRow, socRow, err
	}
	_, sBefore := s.Primary().Writer().Stats()
	sm := drive(s.Primary().Engine, sw, s.PrimaryMeter)
	_, sAfter := s.Primary().Writer().Stats()
	if failed, cause := s.Primary().Engine.Failed(); failed {
		return hadrRow, socRow, fmt.Errorf("table5: socrates engine poisoned: %w", cause)
	}
	socRow = LogRow{System: "Socrates",
		LogMBps:  mbps(sAfter-sBefore, sm.Elapsed),
		CPUPct:   s.PrimaryMeter.Utilization(),
		Commits:  sm.WriteTxns,
		LogBytes: sAfter - sBefore}
	return hadrRow, socRow, nil
}

// --- Table 6 / Figure 4 / Table 7: XIO vs DirectDrive (Appendix A) ---

// LatencyRow is one service's row in Table 6.
type LatencyRow struct {
	Service string
	Stats   metrics.Summary
}

// Table6 measures single-client UpdateLite commit latency with the landing
// zone on XIO vs DirectDrive (paper: median 3300 µs vs 800 µs).
func Table6(o Options) (xio, dd LatencyRow, err error) {
	o = o.defaults()
	for _, svc := range []struct {
		name    string
		profile simdisk.Profile
		out     *LatencyRow
	}{
		{"XIO", simdisk.XIO, &xio},
		{"DD", simdisk.DirectDrive, &dd},
	} {
		s, err := newSocrates("t6-"+svc.name, svc.profile, 64, 256, 0)
		if err != nil {
			return xio, dd, err
		}
		w := cdb.New(o.SF / 4)
		if err := w.Setup(s.Primary().Engine); err != nil {
			s.Close()
			return xio, dd, err
		}
		m := driveCDB(s.Primary().Engine, w, cdb.UpdateLiteMix, 1, 0, s.PrimaryMeter, o)
		*svc.out = LatencyRow{Service: svc.name, Stats: m.WriteLatency.Summarize()}
		s.Close()
	}
	return xio, dd, nil
}

// CurvePoint is one point of Figure 4.
type CurvePoint struct {
	Service string
	Threads int
	TPS     float64
}

// Figure4 sweeps UpdateLite throughput over client thread counts for both
// landing-zone services.
func Figure4(o Options, threadCounts []int) ([]CurvePoint, error) {
	o = o.defaults()
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4, 8, 16, 32, 64}
	}
	var points []CurvePoint
	for _, svc := range []struct {
		name    string
		profile simdisk.Profile
	}{
		{"XIO", simdisk.XIO},
		{"DD", simdisk.DirectDrive},
	} {
		for _, threads := range threadCounts {
			// Fresh deployment per point (see Table7).
			s, err := newSocrates(fmt.Sprintf("f4-%s-%d", svc.name, threads),
				svc.profile, 64, 256, 0)
			if err != nil {
				return nil, err
			}
			w := cdb.New(o.SF / 4)
			if err := w.Setup(s.Primary().Engine); err != nil {
				s.Close()
				return nil, err
			}
			m := driveCDB(s.Primary().Engine, w, cdb.UpdateLiteMix, threads, 0, s.PrimaryMeter, o)
			points = append(points, CurvePoint{Service: svc.name, Threads: threads,
				TPS: m.TotalTPS()})
			s.Close()
		}
	}
	return points, nil
}

// EfficiencyRow is one service's row in Table 7.
type EfficiencyRow struct {
	Service string
	Threads int
	LogMBps float64
	CPUPct  float64
}

// Table7 searches the client thread count at which each service reaches the
// target log rate and reports the primary CPU it burns there (paper: XIO
// needs 8x the threads and ~3x the CPU of DD for the same 70 MB/s).
func Table7(o Options, targetMBps float64) (xio, dd EfficiencyRow, err error) {
	o = o.defaults()
	if targetMBps == 0 {
		targetMBps = 1.0 // scaled stand-in for the paper's 70 MB/s
	}
	for _, svc := range []struct {
		name    string
		profile simdisk.Profile
		out     *EfficiencyRow
	}{
		{"XIO", simdisk.XIO, &xio},
		{"DD", simdisk.DirectDrive, &dd},
	} {
		for _, threads := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
			// Fresh deployment per rung: version chains and table growth
			// from earlier rungs must not distort later measurements.
			s, err := newSocrates(fmt.Sprintf("t7-%s-%d", svc.name, threads),
				svc.profile, 64, 256, 0)
			if err != nil {
				return xio, dd, err
			}
			w := cdb.New(o.SF / 4)
			if err := w.Setup(s.Primary().Engine); err != nil {
				s.Close()
				return xio, dd, err
			}
			_, before := s.Primary().Writer().Stats()
			_ = driveCDB(s.Primary().Engine, w, cdb.UpdateLiteMix, threads, 0, s.PrimaryMeter, o)
			_, after := s.Primary().Writer().Stats()
			rate := mbps(after-before, o.Measure+o.WarmUp)
			*svc.out = EfficiencyRow{Service: svc.name, Threads: threads,
				LogMBps: rate, CPUPct: s.PrimaryMeter.Utilization()}
			s.Close()
			if rate >= targetMBps {
				break
			}
		}
	}
	return xio, dd, nil
}

func mbps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / d.Seconds()
}

// estimateCDBDataPages sizes a CDB database by loading it into a throwaway
// in-memory engine and reading the allocator cursor.
func estimateCDBDataPages(sf int) int {
	e, pages := scratchEngine()
	w := cdb.New(sf)
	if err := w.Setup(e); err != nil {
		return 64
	}
	return pages()
}

var _ = fmt.Sprintf
