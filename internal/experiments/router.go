package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"errors"
	"socrates/internal/cluster"
	"socrates/internal/frontdoor"
	"socrates/internal/simdisk"
	"socrates/internal/socerr"
	"socrates/internal/xstore"
)

// RouterRow is the multi-tenant isolation experiment (BENCH_pr10.json):
// a victim and a noisy neighbor share one elastic pool whose landing
// zone has a hard bandwidth cap, and the noisy tenant floods it with fat
// writes. Three arms on identical deployments: quiet (noisy idle, the
// victim's baseline), open (no admission control — the flood saturates
// the shared log device and the victim's commits queue behind it), and
// admission (the front door's per-tenant token bucket caps the noisy
// tenant at the door, before its writes ever reach the shared log).
// The headline is the victim's p99 relative to quiet: >= 2x degraded
// with the door open, <= 1.25x with admission on.
type RouterRow struct {
	Pools      int     `json:"pools"`
	LZMBps     float64 `json:"lz_mbps"`      // shared landing-zone bandwidth cap
	NoisyBytes int     `json:"noisy_bytes"`  // noisy write payload
	NoisyRate  float64 `json:"noisy_rate"`   // admission cap, ops/sec (admission arm)
	QuietP50Us int64   `json:"quiet_p50_us"` // victim alone
	QuietP99Us int64   `json:"quiet_p99_us"`
	QuietOps   int64   `json:"quiet_ops"`

	OpenP50Us int64 `json:"open_p50_us"` // flood, no admission control
	OpenP99Us int64 `json:"open_p99_us"`
	OpenOps   int64 `json:"open_ops"`
	OpenNoisy int64 `json:"open_noisy_ops"`

	AdmitP50Us   int64 `json:"admit_p50_us"` // flood, admission on
	AdmitP99Us   int64 `json:"admit_p99_us"`
	AdmitOps     int64 `json:"admit_ops"`
	AdmitNoisy   int64 `json:"admit_noisy_ops"`
	AdmitRejects int64 `json:"admit_rejects"`

	// OpenRatio is open p99 / quiet p99 (the damage, target >= 2x);
	// AdmitRatio is admission p99 / quiet p99 (the cure, target <= 1.25x).
	OpenRatio  float64 `json:"open_ratio"`
	AdmitRatio float64 `json:"admit_ratio"`
}

const (
	routerLZMBps        = 2.0  // shared LZ bandwidth cap, MB/s
	routerNoisyBytes    = 1800 // noisy payload per write (MaxCell bounds a row at 2048)
	routerNoisyRate     = 30.0 // admission cap for the noisy tenant, ops/sec
	routerNoisyBurst    = 15.0
	routerNoisyThreads  = 8
	routerVictimThreads = 2
)

// routerFleet boots one elastic pool with a bandwidth-capped landing
// zone shared by both tenants.
func routerFleet(seed int64) (*frontdoor.Fleet, error) {
	lz := simdisk.XIO
	lz.Name = "xio-capped"
	lz.ThroughputMBps = routerLZMBps
	return frontdoor.NewFleet(frontdoor.FleetConfig{
		Clusters: 1,
		Tenants:  []string{"victim", "noisy"},
		Seed:     seed,
		Cluster: func(int) cluster.Config {
			return cluster.Config{
				LZProfile:       lz,
				LZCapacity:      64 << 20,
				ComputeMemPages: 2048,
				PSMemPages:      256,
				PSPullBytes:     1 << 20,
				PrimaryCores:    16,
				CheckpointEvery: 200 * time.Millisecond,
				XStore:          xstore.Config{Profile: simdisk.HDD},
			}
		},
	})
}

type routerArm struct {
	victimOps, noisyOps, rejects int64
	p50, p99                     time.Duration
}

// routerDrive runs one arm: victim threads committing small rows
// closed-loop, noisy threads flooding fat rows (0 threads = quiet arm),
// optionally with the noisy tenant's admission bucket capped. Victim
// latencies are recorded only after warm-up — the device token bucket's
// burst allowance (one second of bandwidth) must be drained before the
// cap is the operative constraint.
func routerDrive(o Options, noisyThreads int, noisyRate float64) (routerArm, error) {
	f, err := routerFleet(10)
	if err != nil {
		return routerArm{}, err
	}
	defer f.Close()
	ctx := context.Background()
	for _, tn := range []string{"victim", "noisy"} {
		if _, err := f.Router.ExecContext(ctx, tn, `CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)`); err != nil {
			return routerArm{}, fmt.Errorf("router: %s setup: %w", tn, err)
		}
	}
	if noisyRate > 0 {
		f.SetAdmission("noisy", noisyRate, routerNoisyBurst)
	}

	warmUntil := time.Now().Add(o.WarmUp)
	deadline := time.Now().Add(o.WarmUp + o.Measure)
	fat := make([]byte, routerNoisyBytes)
	for i := range fat {
		fat[i] = 'x'
	}
	payload := string(fat)

	var arm routerArm
	var mu sync.Mutex
	var lats []time.Duration
	var seq atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < routerVictimThreads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				n := seq.Add(1)
				start := time.Now()
				_, err := f.Router.ExecContext(ctx, "victim",
					fmt.Sprintf(`INSERT INTO kv VALUES ('v%08d', 'y')`, n))
				if err != nil {
					continue
				}
				if start.After(warmUntil) {
					mu.Lock()
					lats = append(lats, time.Since(start))
					arm.victimOps++
					mu.Unlock()
				}
			}
		}()
	}
	for t := 0; t < noisyThreads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				n := seq.Add(1)
				start := time.Now()
				_, err := f.Router.ExecContext(ctx, "noisy",
					fmt.Sprintf(`INSERT INTO kv VALUES ('n%08d', '%s')`, n, payload))
				switch {
				case err == nil:
					if start.After(warmUntil) {
						mu.Lock()
						arm.noisyOps++
						mu.Unlock()
					}
				case errors.Is(err, socerr.ErrAdmission):
					if start.After(warmUntil) {
						mu.Lock()
						arm.rejects++
						mu.Unlock()
					}
					// A rejected client backs off; hot-looping on the door
					// would measure the CPU of rejection, not the pool.
					time.Sleep(2 * time.Millisecond) //socrates:sleep-ok client backoff after admission rejection
				default:
					return
				}
			}
		}()
	}
	wg.Wait()
	if failed, cause := f.Host(0).Cluster().Primary().Engine.Failed(); failed {
		return routerArm{}, fmt.Errorf("router: engine poisoned: %w", cause)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) == 0 {
		return routerArm{}, fmt.Errorf("router: victim completed zero measured ops")
	}
	arm.p50 = lats[len(lats)/2]
	arm.p99 = lats[len(lats)*99/100]
	return arm, nil
}

// Router measures tenant isolation at the front door: the victim's
// commit p99 with the pool quiet, flooded without admission control,
// and flooded with the noisy tenant capped at the door.
func Router(o Options) (RouterRow, error) {
	o = o.defaults()
	// The LZ device's burst allowance is one second of bandwidth; the
	// flood must drain it during warm-up or the cap never bites.
	if o.WarmUp < 1200*time.Millisecond {
		o.WarmUp = 1200 * time.Millisecond
	}
	quiet, err := routerDrive(o, 0, 0)
	if err != nil {
		return RouterRow{}, fmt.Errorf("quiet arm: %w", err)
	}
	open, err := routerDrive(o, routerNoisyThreads, 0)
	if err != nil {
		return RouterRow{}, fmt.Errorf("open arm: %w", err)
	}
	admit, err := routerDrive(o, routerNoisyThreads, routerNoisyRate)
	if err != nil {
		return RouterRow{}, fmt.Errorf("admission arm: %w", err)
	}
	// Floor: quantiles over a handful of commits are noise, not a result.
	const minOps = 50
	if quiet.victimOps < minOps || open.victimOps < minOps || admit.victimOps < minOps {
		return RouterRow{}, fmt.Errorf(
			"router: too few victim ops for stable quantiles (quiet %d, open %d, admission %d, floor %d); widen -measure",
			quiet.victimOps, open.victimOps, admit.victimOps, minOps)
	}
	if open.noisyOps == 0 {
		return RouterRow{}, fmt.Errorf("router: the flood never landed a write; the open arm measured nothing")
	}
	if admit.rejects == 0 {
		return RouterRow{}, fmt.Errorf("router: admission control rejected nothing; the admission arm measured nothing")
	}
	return RouterRow{
		Pools:      1,
		LZMBps:     routerLZMBps,
		NoisyBytes: routerNoisyBytes,
		NoisyRate:  routerNoisyRate,

		QuietP50Us: quiet.p50.Microseconds(),
		QuietP99Us: quiet.p99.Microseconds(),
		QuietOps:   quiet.victimOps,

		OpenP50Us: open.p50.Microseconds(),
		OpenP99Us: open.p99.Microseconds(),
		OpenOps:   open.victimOps,
		OpenNoisy: open.noisyOps,

		AdmitP50Us:   admit.p50.Microseconds(),
		AdmitP99Us:   admit.p99.Microseconds(),
		AdmitOps:     admit.victimOps,
		AdmitNoisy:   admit.noisyOps,
		AdmitRejects: admit.rejects,

		OpenRatio:  float64(open.p99) / float64(quiet.p99),
		AdmitRatio: float64(admit.p99) / float64(quiet.p99),
	}, nil
}
