package experiments

import (
	"fmt"
	"sort"

	"socrates/internal/cdb"
	"socrates/internal/simdisk"
)

// FlightOverheadRow reports the cost of the always-on flight recorder on the
// group-commit path: the same commit-heavy workload is run on identical
// Socrates deployments with the flight ring recording vs gated off, in
// interleaved enabled/disabled pairs, and the median of the per-pair
// throughput deltas is the recorder's overhead. Interleaving plus a median
// is needed because run-to-run TPS noise on a loaded host (~±10%) swamps the
// effect being measured; the plane's budget is <5% (ISSUE 3), and the ring
// records per-flush and per-batch events (not per-commit), so the true cost
// is expected to be noise-level.
type FlightOverheadRow struct {
	// EnabledTPS / DisabledTPS are the median total committed transactions
	// per second across pairs with the flight recorder on (the default) and
	// off.
	EnabledTPS  float64 `json:"enabled_tps"`
	DisabledTPS float64 `json:"disabled_tps"`
	// OverheadPct is the median over pairs of (disabled-enabled)/disabled in
	// percent; negative values mean run-to-run noise exceeded the recorder's
	// cost.
	OverheadPct float64 `json:"overhead_pct"`
	// Pairs is the number of enabled/disabled pairs measured.
	Pairs int `json:"pairs"`
	// Events is the number of flight events recorded during the last enabled
	// run (including any evicted by ring wraparound) — evidence the ring was
	// live while we measured.
	Events uint64 `json:"events"`
	// Watermarks is the number of distinct LSN watermarks the enabled runs
	// published — evidence the ladder was live while we measured.
	Watermarks int `json:"watermarks"`
}

// FlightOverhead measures the observability plane's cost on the group-commit
// path (flight recorder enabled vs the ring gated off). Both arms keep the
// watermark ladder live — watermark publication is a handful of atomics and
// is not gateable — so the row isolates the flight ring specifically.
func FlightOverhead(o Options) (FlightOverheadRow, error) {
	o = o.defaults()
	row := FlightOverheadRow{Pairs: 3}

	run := func(name string, enabled bool) (float64, uint64, int, error) {
		s, err := newSocrates(name, simdisk.XIO, 16, 256, 512)
		if err != nil {
			return 0, 0, 0, err
		}
		defer s.Close()
		s.Flight.SetEnabled(enabled)
		w := cdb.New(o.SF / 2)
		if err := w.Setup(s.Primary().Engine); err != nil {
			return 0, 0, 0, err
		}
		m := driveCDB(s.Primary().Engine, w, cdb.MaxLogMix, o.Threads, 16, s.PrimaryMeter, o)
		if failed, cause := s.Primary().Engine.Failed(); failed {
			return 0, 0, 0, fmt.Errorf("flight-overhead: engine poisoned: %w", cause)
		}
		return m.TotalTPS(), s.Flight.Recorded(), len(s.Watermarks.Snapshot()), nil
	}

	var onTPS, offTPS, deltas []float64
	for i := 0; i < row.Pairs; i++ {
		// Alternate which arm goes first within each pair so host warm-up
		// and drift bias neither arm systematically.
		order := []bool{false, true}
		if i%2 == 1 {
			order = []bool{true, false}
		}
		var pairOn, pairOff float64
		for _, enabled := range order {
			tps, events, wms, err := run(fmt.Sprintf("obs-%d-%v", i, enabled), enabled)
			if err != nil {
				return row, err
			}
			if enabled {
				pairOn, row.Events, row.Watermarks = tps, events, wms
			} else {
				pairOff = tps
			}
		}
		onTPS = append(onTPS, pairOn)
		offTPS = append(offTPS, pairOff)
		if pairOff > 0 {
			deltas = append(deltas, 100*(pairOff-pairOn)/pairOff)
		}
	}

	row.EnabledTPS = median(onTPS)
	row.DisabledTPS = median(offTPS)
	row.OverheadPct = median(deltas)
	return row, nil
}

// median returns the middle value (lower median for even counts), or 0 for
// an empty slice.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
