package experiments

import (
	"fmt"
	"time"

	"socrates/internal/cdb"
	"socrates/internal/page"
	"socrates/internal/simdisk"
)

// Table1Row is one goal line of Table 1: the measured value for the old
// architecture ("Today" = HADR) and for Socrates.
type Table1Row struct {
	Metric   string
	HADR     string
	Socrates string
}

// Table1 measures the goal metrics of the paper's Table 1 on both stacks:
// up/downsize cost scaling, storage copies, recovery time, commit latency,
// and log throughput. (Max DB size and availability are design properties,
// reported from configuration.)
func Table1(o Options) ([]Table1Row, error) {
	o = o.defaults()
	short := o
	if short.Measure > time.Second {
		short.Measure = time.Second
	}
	var rows []Table1Row

	// --- Up/downsize: O(data) reseed vs O(1) reattach ---
	smallSeed, largeSeed, err := hadrReseedCost(o.SF/4, o.SF)
	if err != nil {
		return nil, err
	}
	socSmall, socLarge, err := socratesScaleCost(o.SF/4, o.SF)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Metric: "Upsize/downsize",
		HADR: fmt.Sprintf("O(data): %.0fms @%d rows -> %.0fms @%d rows",
			ms(smallSeed), o.SF/4, ms(largeSeed), o.SF),
		Socrates: fmt.Sprintf("O(1): %.0fms @%d rows -> %.0fms @%d rows",
			ms(socSmall), o.SF/4, ms(socLarge), o.SF),
	})

	// --- Storage impact: copies of the database ---
	hadrCopies, socCopies, err := storageCopies(o.SF / 2)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Metric:   "Storage impact",
		HADR:     fmt.Sprintf("%.1fx copies (+log backup)", hadrCopies),
		Socrates: fmt.Sprintf("%.1fx copies (+snapshots)", socCopies),
	})

	// --- Commit latency: HADR quorum vs Socrates landing zone ---
	hadrLat, socXIOLat, socDDLat, err := commitLatencies(short)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Metric: "Commit latency",
		HADR:   fmt.Sprintf("%.2fms (AZ quorum)", ms(hadrLat)),
		Socrates: fmt.Sprintf("%.2fms on DD (%.2fms on XIO)",
			ms(socDDLat), ms(socXIOLat)),
	})

	// --- Log throughput (the Table 5 result, summarized) ---
	hadrLog, socLog, err := Table5(short)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Metric:   "Log throughput",
		HADR:     fmt.Sprintf("%.1f MB/s (backup-throttled)", hadrLog.LogMBps),
		Socrates: fmt.Sprintf("%.1f MB/s", socLog.LogMBps),
	})

	// --- Recovery: failover to availability ---
	hadrRec, socRec, err := recoveryTimes(o.SF / 2)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Metric:   "Recovery",
		HADR:     fmt.Sprintf("O(1): %.0fms", ms(hadrRec)),
		Socrates: fmt.Sprintf("O(1): %.0fms", ms(socRec)),
	})

	// Design properties (not measured).
	rows = append(rows,
		Table1Row{Metric: "Max DB size", HADR: "bounded by one machine",
			Socrates: "bounded by page-server count (grows on demand)"},
	)
	return rows, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// hadrReseedCost measures HADR's add-replica time at two database sizes.
func hadrReseedCost(smallSF, largeSF int) (small, large time.Duration, err error) {
	for i, sf := range []int{smallSF, largeSF} {
		h, err := newHADR(fmt.Sprintf("t1-hadr-seed%d", i), 8, 0, 64<<20)
		if err != nil {
			return 0, 0, err
		}
		w := cdb.New(sf)
		if err := w.Setup(h.Primary().Engine()); err != nil {
			h.Close()
			return 0, 0, err
		}
		_, _, elapsed, err := h.SeedNewReplica(fmt.Sprintf("t1-new-%d", i))
		h.Close()
		if err != nil {
			return 0, 0, err
		}
		if i == 0 {
			small = elapsed
		} else {
			large = elapsed
		}
	}
	return small, large, nil
}

// socratesScaleCost measures Socrates compute scale-up time at two sizes.
func socratesScaleCost(smallSF, largeSF int) (small, large time.Duration, err error) {
	for i, sf := range []int{smallSF, largeSF} {
		s, err := newSocrates(fmt.Sprintf("t1-soc-scale%d", i), simdisk.DirectDrive, 8, 64, 128)
		if err != nil {
			return 0, 0, err
		}
		w := cdb.New(sf)
		if err := w.Setup(s.Primary().Engine); err != nil {
			s.Close()
			return 0, 0, err
		}
		if err := s.WaitForCatchUp(30 * time.Second); err != nil {
			s.Close()
			return 0, 0, err
		}
		elapsed, err := s.ScaleCompute(128, 256)
		s.Close()
		if err != nil {
			return 0, 0, err
		}
		if i == 0 {
			small = elapsed
		} else {
			large = elapsed
		}
	}
	return small, large, nil
}

// storageCopies measures how many copies of the database each architecture
// stores in its fast+durable tiers.
func storageCopies(sf int) (hadrCopies, socCopies float64, err error) {
	h, err := newHADR("t1-hadr-store", 8, 0, 64<<20)
	if err != nil {
		return 0, 0, err
	}
	w := cdb.New(sf)
	if err := w.Setup(h.Primary().Engine()); err != nil {
		h.Close()
		return 0, 0, err
	}
	end := h.Writer().HardenedEnd()
	for _, sec := range h.Secondaries() {
		sec.WaitApplied(end, 10*time.Second)
	}
	primBytes := h.Primary().DataBytes()
	if primBytes > 0 {
		hadrCopies = float64(h.TotalDataBytes()) / float64(primBytes)
	}
	h.Close()

	s, err := newSocrates("t1-soc-store", simdisk.DirectDrive, 8, 64, 0)
	if err != nil {
		return 0, 0, err
	}
	sw := cdb.New(sf)
	if err := sw.Setup(s.Primary().Engine); err != nil {
		s.Close()
		return 0, 0, err
	}
	if err := s.WaitForCatchUp(30 * time.Second); err != nil {
		s.Close()
		return 0, 0, err
	}
	for _, srv := range s.PageServers() {
		if _, err := srv.FlushForBackup(); err != nil {
			s.Close()
			return 0, 0, err
		}
	}
	dbBytes := int64(s.Primary().Engine.AllocatedPages()) * page.Size
	var psBytes int64
	for _, srv := range s.PageServers() {
		psBytes += int64(srv.Cache().Len()) * page.Size
	}
	// XStore checkpoint copy ≈ one copy; page servers ≈ one copy. The log
	// archive is excluded from both (it is backup, like HADR's).
	var checkpointBytes int64
	for _, name := range s.Store.List("t1-soc-store/page/") {
		if sz, err := s.Store.Size(name); err == nil {
			checkpointBytes += sz
		}
	}
	if dbBytes > 0 {
		socCopies = float64(psBytes+checkpointBytes) / float64(dbBytes)
	}
	s.Close()
	return hadrCopies, socCopies, nil
}

// commitLatencies measures single-client UpdateLite commit latency on all
// three configurations.
func commitLatencies(o Options) (hadrMed, socXIO, socDD time.Duration, err error) {
	h, err := newHADR("t1-hadr-lat", 8, 0, 64<<20)
	if err != nil {
		return 0, 0, 0, err
	}
	w := cdb.New(o.SF / 4)
	if err := w.Setup(h.Primary().Engine()); err != nil {
		h.Close()
		return 0, 0, 0, err
	}
	hm := driveCDB(h.Primary().Engine(), w, cdb.UpdateLiteMix, 1, 0, h.PrimaryMeter, o)
	hadrMed = hm.WriteLatency.Median()
	h.Close()

	xio, dd, err := Table6(o)
	if err != nil {
		return 0, 0, 0, err
	}
	return hadrMed, xio.Stats.Median, dd.Stats.Median, nil
}

// recoveryTimes measures failover-to-availability on both stacks.
func recoveryTimes(sf int) (hadrRec, socRec time.Duration, err error) {
	h, err := newHADR("t1-hadr-rec", 8, 0, 64<<20)
	if err != nil {
		return 0, 0, err
	}
	w := cdb.New(sf)
	if err := w.Setup(h.Primary().Engine()); err != nil {
		h.Close()
		return 0, 0, err
	}
	_, hadrRec, err = h.Failover()
	h.Close()
	if err != nil {
		return 0, 0, err
	}

	s, err := newSocrates("t1-soc-rec", simdisk.DirectDrive, 8, 64, 128)
	if err != nil {
		return 0, 0, err
	}
	sw := cdb.New(sf)
	if err := sw.Setup(s.Primary().Engine); err != nil {
		s.Close()
		return 0, 0, err
	}
	if err := s.WaitForCatchUp(30 * time.Second); err != nil {
		s.Close()
		return 0, 0, err
	}
	_, socRec, err = s.Failover()
	s.Close()
	return hadrRec, socRec, err
}
