package experiments

import (
	"fmt"
	"time"

	"socrates/internal/cdb"
	"socrates/internal/cluster"
	"socrates/internal/simdisk"
	"socrates/internal/xstore"
)

// CommitRow is the commit-path A/B (BENCH_pr9.json): the adaptive group
// commit pipeline (hold-window batching, record coalescing, one-way harden
// acks, flexible 2-of-3 LZ quorum) against the round-trip baseline it
// replaced (fixed 150µs/4KiB window, no coalescing, a full round trip per
// harden report, fixed 3-of-3 replica set). Both arms run the CDB MaxLog
// mix on identical deployments — same landing-zone device class, same
// fabric profile, same seed — so every simulated RTT is equal across arms
// and the p50/p99 gap is attributable to the commit path alone.
type CommitRow struct {
	Profile     string `json:"profile"`     // LZ device class, equal across arms
	LZWriteUs   int64  `json:"lz_write_us"` // nominal LZ write latency both arms pay
	Threads     int    `json:"threads"`
	BaseQuorum  int    `json:"base_quorum"`     // fixed set: every replica acks
	AdaptQuorum int    `json:"adaptive_quorum"` // flexible: fastest 2 of 3

	BaseOps    int64 `json:"base_ops"`    // committed write transactions
	BaseBlocks int64 `json:"base_blocks"` // LZ quorum writes flushing them
	BaseP50Us  int64 `json:"base_p50_us"`
	BaseP99Us  int64 `json:"base_p99_us"`

	AdaptOps       int64 `json:"adaptive_ops"`
	AdaptBlocks    int64 `json:"adaptive_blocks"`
	AdaptCoalesced int64 `json:"adaptive_coalesced"` // records squashed in-batch
	AdaptP50Us     int64 `json:"adaptive_p50_us"`
	AdaptP99Us     int64 `json:"adaptive_p99_us"`

	// P99Ratio is the headline: baseline p99 / adaptive p99 (target >= 2x).
	P99Ratio float64 `json:"p99_ratio"`
	P50Ratio float64 `json:"p50_ratio"`
}

// commitThreads pins the client concurrency of the commit experiment. This
// is a latency measurement, not a throughput race: enough clients that the
// durable-prefix convoy behind a stuttering replica is visible at p99
// (closed-loop clients only observe a stall they are blocked on), yet few
// enough that commit latency measures the log pipeline rather than engine
// row-lock queues — the regime Table 6 measures with a single client,
// widened just enough to give group commit material to batch.
const commitThreads = 4

// commitArm runs one arm of the A/B and reports commit-latency quantiles
// plus the batching evidence (blocks flushed, records coalesced).
type commitArm struct {
	ops, blocks, coalesced int64
	p50, p99               time.Duration
}

// commitDrive boots a Socrates deployment with the given commit path and
// drives the MaxLog mix against it. legacy selects the baseline arm:
// pre-adaptive log pipeline plus the fixed full-replica-set quorum.
// Everything else — device profiles, fabric, seed, workload — is identical,
// which is what makes the arms comparable at equal simulated RTT.
func commitDrive(name string, o Options, legacy bool) (commitArm, error) {
	quorum := 2
	if legacy {
		quorum = 3
	}
	c, err := cluster.New(cluster.Config{
		Name:             name,
		LZProfile:        simdisk.XIO,
		LZCapacity:       32 << 20,
		LZQuorum:         quorum,
		LegacyCommitPath: legacy,
		ComputeMemPages:  2048,
		ComputeSSDPages:  0,
		PSMemPages:       256,
		PSPullBytes:      1 << 20,
		PrimaryCores:     16,
		CheckpointEvery:  200 * time.Millisecond,
		XStore:           xstore.Config{Profile: simdisk.HDD},
		Seed:             9,
	})
	if err != nil {
		return commitArm{}, err
	}
	defer c.Close()
	w := cdb.New(o.SF)
	if err := w.Setup(c.Primary().Engine); err != nil {
		return commitArm{}, err
	}
	m := driveCDB(c.Primary().Engine, w, cdb.MaxLogMix, commitThreads, 0, c.PrimaryMeter, o)
	if failed, cause := c.Primary().Engine.Failed(); failed {
		return commitArm{}, fmt.Errorf("commit: %s engine poisoned: %w", name, cause)
	}
	blocks, _ := c.Primary().Writer().Stats()
	return commitArm{
		ops:       m.WriteTxns,
		blocks:    blocks,
		coalesced: c.Primary().Writer().Coalesced(),
		p50:       m.WriteLatency.Quantile(0.5),
		p99:       m.WriteLatency.Quantile(0.99),
	}, nil
}

// Commit measures the adaptive commit path against the round-trip baseline
// under the CDB MaxLog mix at equal simulated RTT.
func Commit(o Options) (CommitRow, error) {
	o = o.defaults()
	base, err := commitDrive("commit-base", o, true)
	if err != nil {
		return CommitRow{}, err
	}
	adapt, err := commitDrive("commit-adaptive", o, false)
	if err != nil {
		return CommitRow{}, err
	}
	// Floor: quantiles over a handful of commits are noise, not a result.
	const minOps = 100
	if base.ops < minOps || adapt.ops < minOps {
		return CommitRow{}, fmt.Errorf(
			"commit: too few commits for stable quantiles (base %d, adaptive %d, floor %d); widen -measure",
			base.ops, adapt.ops, minOps)
	}
	if base.p99 <= 0 || adapt.p99 <= 0 {
		return CommitRow{}, fmt.Errorf("commit: empty latency histogram (base p99 %v, adaptive p99 %v)",
			base.p99, adapt.p99)
	}
	return CommitRow{
		Profile:     simdisk.XIO.Name,
		LZWriteUs:   simdisk.XIO.WriteBase.Microseconds(),
		Threads:     commitThreads,
		BaseQuorum:  3,
		AdaptQuorum: 2,

		BaseOps:    base.ops,
		BaseBlocks: base.blocks,
		BaseP50Us:  base.p50.Microseconds(),
		BaseP99Us:  base.p99.Microseconds(),

		AdaptOps:       adapt.ops,
		AdaptBlocks:    adapt.blocks,
		AdaptCoalesced: adapt.coalesced,
		AdaptP50Us:     adapt.p50.Microseconds(),
		AdaptP99Us:     adapt.p99.Microseconds(),

		P99Ratio: float64(base.p99) / float64(adapt.p99),
		P50Ratio: float64(base.p50) / float64(adapt.p50),
	}, nil
}
