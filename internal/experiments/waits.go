package experiments

import (
	"context"
	"fmt"
	"time"

	"socrates/internal/cdb"
	"socrates/internal/simdisk"
	"socrates/internal/sqlengine"
)

// WaitOverheadRow reports what the wait-stats plane costs and what it
// buys. The cost side mirrors FlightOverheadRow: the CDB default mix runs
// on identical deployments with the wait sketches recording vs gated off,
// in interleaved enabled/disabled pairs, and the median per-pair
// throughput delta is the accounting's overhead (budget <3% — every
// WaitPoint is a pair of time.Now calls plus a few atomics, so the true
// cost should be noise-level). The benefit side is per-request
// attribution: the share of a committing statement's wall-clock latency
// its own wait breakdown explains (target >=80% — on an XIO landing zone a
// commit is almost entirely commit.harden).
type WaitOverheadRow struct {
	// EnabledTPS / DisabledTPS are the median total committed transactions
	// per second across pairs with wait recording on (the default) and off.
	EnabledTPS  float64 `json:"enabled_tps"`
	DisabledTPS float64 `json:"disabled_tps"`
	// OverheadPct is the median over pairs of (disabled-enabled)/disabled
	// in percent; negative values mean run-to-run noise exceeded the
	// accounting's cost.
	OverheadPct float64 `json:"overhead_pct"`
	// Pairs is the number of enabled/disabled pairs measured.
	Pairs int `json:"pairs"`
	// Classes is the number of distinct wait classes the last enabled
	// run's global sketch recorded — evidence the taxonomy was live while
	// we measured.
	Classes int `json:"classes"`
	// TopClass is the class with the most total blocked time in the last
	// enabled run (on this commit-heavy mix: commit.harden).
	TopClass string `json:"top_class"`
	// AttributedPct is the median share of a traced INSERT's wall-clock
	// latency explained by its per-request wait breakdown.
	AttributedPct float64 `json:"attributed_pct"`
}

// WaitOverhead measures the wait-accounting plane: sketch overhead on the
// CDB default mix (enabled vs disabled, interleaved pairs) plus
// per-request attribution coverage on a commit-bound statement stream.
// Per-request profiles stay live in both arms — SetEnabled gates only the
// sketches, matching the production knob.
func WaitOverhead(o Options) (WaitOverheadRow, error) {
	o = o.defaults()
	row := WaitOverheadRow{Pairs: 3}

	run := func(name string, enabled bool) (float64, int, string, error) {
		s, err := newSocrates(name, simdisk.XIO, 16, 256, 512)
		if err != nil {
			return 0, 0, "", err
		}
		defer s.Close()
		s.Waits.SetEnabled(enabled)
		w := cdb.New(o.SF / 2)
		if err := w.Setup(s.Primary().Engine); err != nil {
			return 0, 0, "", err
		}
		m := driveCDB(s.Primary().Engine, w, cdb.DefaultMix, o.Threads, 16, s.PrimaryMeter, o)
		if failed, cause := s.Primary().Engine.Failed(); failed {
			return 0, 0, "", fmt.Errorf("wait-overhead: engine poisoned: %w", cause)
		}
		rep := s.Waits.Report()
		top := ""
		if len(rep.Global) > 0 {
			top = rep.Global[0].Class
		}
		return m.TotalTPS(), len(rep.Global), top, nil
	}

	var onTPS, offTPS, deltas []float64
	for i := 0; i < row.Pairs; i++ {
		// Alternate which arm goes first within each pair so host warm-up
		// and drift bias neither arm systematically.
		order := []bool{false, true}
		if i%2 == 1 {
			order = []bool{true, false}
		}
		var pairOn, pairOff float64
		for _, enabled := range order {
			tps, classes, top, err := run(fmt.Sprintf("waits-%d-%v", i, enabled), enabled)
			if err != nil {
				return row, err
			}
			if enabled {
				pairOn, row.Classes, row.TopClass = tps, classes, top
			} else {
				pairOff = tps
			}
		}
		onTPS = append(onTPS, pairOn)
		offTPS = append(offTPS, pairOff)
		if pairOff > 0 {
			deltas = append(deltas, 100*(pairOff-pairOn)/pairOff)
		}
	}
	row.EnabledTPS = median(onTPS)
	row.DisabledTPS = median(offTPS)
	row.OverheadPct = median(deltas)

	att, err := waitAttribution()
	if err != nil {
		return row, err
	}
	row.AttributedPct = att
	return row, nil
}

// waitAttribution drives single-statement INSERTs through the SQL front
// end on an XIO-backed deployment and reports the median share of each
// statement's wall-clock latency covered by its per-request wait
// breakdown. Commits on an XIO landing zone spend nearly all their time
// hardening, so the profile should explain almost all of the latency.
func waitAttribution() (float64, error) {
	s, err := newSocrates("waits-attr", simdisk.XIO, 16, 256, 512)
	if err != nil {
		return 0, err
	}
	defer s.Close()
	db := sqlengine.New(s.Primary().Engine)
	sess := db.Session()
	ctx := context.Background()
	if _, err := sess.ExecContext(ctx,
		"CREATE TABLE waits_attr (id INT PRIMARY KEY, v TEXT)"); err != nil {
		return 0, err
	}
	var ratios []float64
	for i := 0; i < 25; i++ {
		start := time.Now()
		res, err := sess.ExecContext(ctx,
			fmt.Sprintf("INSERT INTO waits_attr VALUES (%d, 'row-%d')", i, i))
		if err != nil {
			return 0, err
		}
		if elapsed := time.Since(start); elapsed > 0 {
			ratios = append(ratios, 100*float64(res.WaitTotal)/float64(elapsed))
		}
	}
	return median(ratios), nil
}
