package txn

import (
	"errors"
	"sync"
	"testing"
)

func TestClockSnapshotSeesOnlyPublished(t *testing.T) {
	c := NewClock()
	if c.Snapshot() != 0 {
		t.Fatal("fresh clock should snapshot at 0")
	}
	ts := c.AllocateCommit()
	if ts != 1 {
		t.Fatalf("first commit ts = %d", ts)
	}
	if c.Snapshot() != 0 {
		t.Fatal("unpublished commit visible")
	}
	c.Publish(ts)
	if c.Snapshot() != 1 {
		t.Fatalf("snapshot = %d after publish", c.Snapshot())
	}
}

func TestClockPublishNeverRegresses(t *testing.T) {
	c := NewClock()
	c.Publish(10)
	c.Publish(5)
	if c.Visible() != 10 {
		t.Fatalf("visible = %d", c.Visible())
	}
	// Allocation continues above published watermark.
	if ts := c.AllocateCommit(); ts != 11 {
		t.Fatalf("next allocation = %d, want 11", ts)
	}
}

func TestClockOutOfOrderPublish(t *testing.T) {
	c := NewClock()
	t1 := c.AllocateCommit()
	t2 := c.AllocateCommit()
	c.Publish(t2) // hardened as a group: t2's publish implies t1 durable
	if c.Snapshot() != t2 {
		t.Fatalf("snapshot = %d", c.Snapshot())
	}
	c.Publish(t1) // late publish is a no-op
	if c.Snapshot() != t2 {
		t.Fatalf("snapshot regressed to %d", c.Snapshot())
	}
}

func TestClockConcurrentAllocationsAreUnique(t *testing.T) {
	c := NewClock()
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				ts := c.AllocateCommit()
				mu.Lock()
				if seen[ts] {
					t.Errorf("duplicate ts %d", ts)
				}
				seen[ts] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestLockAcquireConflict(t *testing.T) {
	lt := NewLockTable()
	if err := lt.Acquire("t1|k", 1); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire("t1|k", 1); err != nil {
		t.Fatal("re-acquire by holder should succeed")
	}
	if err := lt.Acquire("t1|k", 2); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("err = %v, want ErrWriteConflict", err)
	}
	// Different key is free.
	if err := lt.Acquire("t1|other", 2); err != nil {
		t.Fatal(err)
	}
}

func TestLockReleaseAll(t *testing.T) {
	lt := NewLockTable()
	_ = lt.Acquire("a", 1)
	_ = lt.Acquire("b", 1)
	_ = lt.Acquire("c", 2)
	lt.ReleaseAll([]string{"a", "b", "c"}, 1) // must not steal txn 2's lock
	if err := lt.Acquire("a", 3); err != nil {
		t.Fatal("released lock not acquirable")
	}
	if err := lt.Acquire("c", 3); !errors.Is(err, ErrWriteConflict) {
		t.Fatal("txn 2's lock was stolen by ReleaseAll(1)")
	}
	if lt.Held() != 2 { // "a" re-acquired by txn 3, "c" still held by txn 2
		t.Fatalf("held = %d", lt.Held())
	}
}

func TestLockReleaseSingle(t *testing.T) {
	lt := NewLockTable()
	_ = lt.Acquire("k", 1)
	lt.Release("k", 2) // wrong owner: no-op
	if err := lt.Acquire("k", 2); !errors.Is(err, ErrWriteConflict) {
		t.Fatal("lock vanished after foreign release")
	}
	lt.Release("k", 1)
	if err := lt.Acquire("k", 2); err != nil {
		t.Fatal(err)
	}
}

func TestLockTableConcurrency(t *testing.T) {
	lt := NewLockTable()
	var wg sync.WaitGroup
	acquired := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := uint64(w + 1)
			for k := 0; k < 100; k++ {
				key := string(rune('a' + k%16))
				if lt.Acquire(key, id) == nil {
					acquired[w]++
					lt.Release(key, id)
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range acquired {
		total += n
	}
	if total == 0 {
		t.Fatal("no locks acquired under contention")
	}
	if lt.Held() != 0 {
		t.Fatalf("leaked %d locks", lt.Held())
	}
}

func TestIDSourceUnique(t *testing.T) {
	var src IDSource
	a, b := src.Next(), src.Next()
	if a == 0 || b == 0 || a == b {
		t.Fatalf("ids = %d, %d", a, b)
	}
}
