// Package txn provides the transaction-management primitives under the
// engine: the commit-timestamp clock that drives Snapshot Isolation and the
// row lock table that gives writers first-writer-wins conflict semantics.
//
// The clock separates allocation from publication: a commit timestamp is
// allocated when the transaction starts applying its writes, but becomes
// visible to new snapshots only after the commit record hardens in the
// landing zone. Readers therefore never observe effects that could still be
// lost in a crash — the invariant that lets Socrates skip undo entirely
// (the ADR property, §3.2).
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrWriteConflict reports a first-writer-wins conflict: another active
// transaction already holds the row lock.
var ErrWriteConflict = errors.New("txn: write-write conflict")

// Clock issues snapshot and commit timestamps.
type Clock struct {
	mu      sync.Mutex
	next    uint64 // last allocated commit timestamp
	visible uint64 // highest published (hardened) commit timestamp
}

// NewClock returns a clock at timestamp zero.
func NewClock() *Clock { return &Clock{} }

// Snapshot returns the timestamp a new snapshot reads at: everything
// published so far.
func (c *Clock) Snapshot() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.visible
}

// AllocateCommit reserves the next commit timestamp. Callers must hold the
// engine's commit lock, so allocation order equals log order.
func (c *Clock) AllocateCommit() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	return c.next
}

// Publish makes ts visible to new snapshots (called after the commit record
// hardened). Publication never regresses.
func (c *Clock) Publish(ts uint64) {
	c.mu.Lock()
	if ts > c.visible {
		c.visible = ts
	}
	if ts > c.next {
		c.next = ts
	}
	c.mu.Unlock()
}

// Visible reports the published watermark.
func (c *Clock) Visible() uint64 { return c.Snapshot() }

// LockTable is a row lock table with immediate (no-wait) conflict
// detection. Keys are opaque strings (table‖row key).
type LockTable struct {
	mu    sync.Mutex
	locks map[string]uint64 // key → holding txn ID
}

// NewLockTable returns an empty lock table.
func NewLockTable() *LockTable {
	return &LockTable{locks: make(map[string]uint64)}
}

// Acquire takes the lock for txnID. Re-acquiring a lock the transaction
// already holds succeeds; a lock held by another transaction fails with
// ErrWriteConflict immediately (first-writer-wins).
func (lt *LockTable) Acquire(key string, txnID uint64) error {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	holder, held := lt.locks[key]
	if held && holder != txnID {
		return fmt.Errorf("%w: key held by txn %d", ErrWriteConflict, holder)
	}
	lt.locks[key] = txnID
	return nil
}

// Release drops one lock if txnID holds it.
func (lt *LockTable) Release(key string, txnID uint64) {
	lt.mu.Lock()
	if lt.locks[key] == txnID {
		delete(lt.locks, key)
	}
	lt.mu.Unlock()
}

// ReleaseAll drops every given lock held by txnID.
func (lt *LockTable) ReleaseAll(keys []string, txnID uint64) {
	lt.mu.Lock()
	for _, k := range keys {
		if lt.locks[k] == txnID {
			delete(lt.locks, k)
		}
	}
	lt.mu.Unlock()
}

// Held reports the number of locks currently held (diagnostics).
func (lt *LockTable) Held() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return len(lt.locks)
}

// IDSource allocates transaction IDs.
type IDSource struct{ next atomic.Uint64 }

// Next returns a fresh nonzero transaction ID.
func (s *IDSource) Next() uint64 { return s.next.Add(1) }
