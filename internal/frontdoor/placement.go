// Package frontdoor is the multi-tenant router tier: the stateless
// gateway that fronts many cluster.Cluster deployments, the placement
// service that says which tenant lives where, per-tenant admission
// control over shared (elastic-pool) clusters, and live tenant
// migration built on XStore's O(1) snapshots plus XLOG tail replay.
//
// The paper's durability/availability split is what makes this tier
// cheap: a tenant's durable state lives in XLOG + XStore, so moving a
// tenant is a snapshot, a bounded log-tail replay, and an epoch bump —
// not a data rewrite. Routers are stateless: they pull assignments from
// the placement service and cache them; a stale cache is corrected by
// the typed socerr.ErrTenantMoved redirect, never by gossip.
package frontdoor

import (
	"fmt"
	"sort"
	"sync"
)

// Assignment pins one tenant to one cluster at a placement epoch. The
// epoch is per-tenant and bumps on every move; hosts reject requests
// carrying any other epoch so a stale router can never write to a
// tenant's old home after a cutover.
type Assignment struct {
	Tenant  string
	Cluster string
	Epoch   uint64
}

// Placement is the tiny authoritative placement service: the tenant →
// cluster map with versioned epochs. It holds no tenant data and makes
// no callbacks — routers pull, hosts validate, the migrator writes.
type Placement struct {
	mu      sync.Mutex
	version uint64 // bumps on any map change (the router's cheap staleness probe)
	tenants map[string]Assignment
}

// NewPlacement returns an empty placement map.
func NewPlacement() *Placement {
	return &Placement{tenants: make(map[string]Assignment)}
}

// Assign creates a tenant on a cluster (epoch 1) or moves an existing
// one there (epoch+1). Migration uses Move to pin the epoch it already
// published to the destination host; Assign is for initial placement
// and tests.
func (p *Placement) Assign(tenant, clusterID string) Assignment {
	p.mu.Lock()
	defer p.mu.Unlock()
	a := p.tenants[tenant]
	a = Assignment{Tenant: tenant, Cluster: clusterID, Epoch: a.Epoch + 1}
	p.tenants[tenant] = a
	p.version++
	return a
}

// Move installs an explicit next assignment. The epoch must advance, so
// a delayed migrator can never roll the map backwards. It is the atomic
// cutover switch: the instant Move returns, every fresh placement pull
// names the destination.
func (p *Placement) Move(tenant, clusterID string, epoch uint64) (Assignment, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cur, ok := p.tenants[tenant]
	if !ok {
		return Assignment{}, fmt.Errorf("frontdoor: move of unknown tenant %q", tenant)
	}
	if epoch <= cur.Epoch {
		return Assignment{}, fmt.Errorf("frontdoor: stale move for %q: epoch %d <= current %d",
			tenant, epoch, cur.Epoch)
	}
	a := Assignment{Tenant: tenant, Cluster: clusterID, Epoch: epoch}
	p.tenants[tenant] = a
	p.version++
	return a, nil
}

// Lookup returns the tenant's current assignment.
func (p *Placement) Lookup(tenant string) (Assignment, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.tenants[tenant]
	return a, ok
}

// Version is the global map version; it bumps on every change. Routers
// compare it against the version of their last pull to decide whether a
// bulk refresh is worthwhile.
func (p *Placement) Version() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.version
}

// Snapshot returns the map version and every assignment, sorted by
// tenant — the router's bulk pull.
func (p *Placement) Snapshot() (uint64, []Assignment) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Assignment, 0, len(p.tenants))
	for _, a := range p.tenants {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return p.version, out
}
