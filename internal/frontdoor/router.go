package frontdoor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"socrates/internal/obs"
	"socrates/internal/socerr"
	"socrates/internal/sqlengine"
)

// Options configures a Router. All observability fields are optional
// (the obs plane is nil-safe).
type Options struct {
	// Placement is the authoritative placement service the router pulls
	// assignments from. Required.
	Placement *Placement
	// Tracer roots a "router.exec" frontdoor-tier span over every
	// request, so per-tenant traces nest the compute tier's sql.exec.
	Tracer *obs.Tracer
	// Metrics receives the tenant-labeled series
	// (frontdoor.tenant.<t>.ops/latency/rejects/redirects/wait.<class>).
	Metrics *obs.Registry
}

// Router is the stateless front door: it resolves a tenant to a host
// through its placement cache, forwards the statement, and turns typed
// redirects into exactly one cache refresh + retry. Routers hold no
// tenant state — any number of them can front the same fleet, and a
// freshly booted router is correct after its first cache miss.
type Router struct {
	placement *Placement
	tracer    *obs.Tracer
	reg       *obs.Registry

	mu      sync.RWMutex
	hosts   map[string]*Host
	cache   map[string]Assignment
	version uint64 // placement version at the last bulk pull
}

// NewRouter builds a router over a placement service.
func NewRouter(o Options) *Router {
	return &Router{
		placement: o.Placement,
		tracer:    o.Tracer,
		reg:       o.Metrics,
		hosts:     make(map[string]*Host),
		cache:     make(map[string]Assignment),
	}
}

// AddHost registers a host (pool) with the router.
func (r *Router) AddHost(h *Host) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hosts[h.ID()] = h
}

// Host resolves a registered host by ID (nil if unknown).
func (r *Router) Host(id string) *Host {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.hosts[id]
}

// Refresh bulk-pulls the placement snapshot into the cache. Routers
// call it on boot; afterwards the redirect protocol keeps the cache
// honest one tenant at a time, with no gossip and no watch streams.
func (r *Router) Refresh() {
	ver, asgs := r.placement.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range asgs {
		r.cache[a.Tenant] = a
	}
	r.version = ver
	r.reg.Counter("frontdoor.placement.pulls").Inc()
}

// assignment resolves a tenant through the cache; refresh forces a pull
// from the placement service (the redirect path).
func (r *Router) assignment(tenant string, refresh bool) (Assignment, error) {
	if !refresh {
		r.mu.RLock()
		a, ok := r.cache[tenant]
		r.mu.RUnlock()
		if ok {
			return a, nil
		}
	}
	a, ok := r.placement.Lookup(tenant)
	if !ok {
		return Assignment{}, fmt.Errorf("frontdoor: unknown tenant %q", tenant)
	}
	r.mu.Lock()
	r.cache[tenant] = a
	r.mu.Unlock()
	r.reg.Counter("frontdoor.placement.pulls").Inc()
	return a, nil
}

// ExecContext is the front-door API: run one statement as a tenant.
// The request is traced under a frontdoor-tier span labeled by tenant,
// admission and redirects are accounted per tenant, and the statement's
// wait breakdown lands on tenant-labeled counters — the observability
// plane sees tenants, not just tiers.
func (r *Router) ExecContext(ctx context.Context, tenant, sqlText string) (*sqlengine.Result, error) {
	ctx, span := r.tracer.StartSpan(ctx, obs.TierFrontdoor, "router.exec")
	span.SetAttr("tenant", tenant)
	defer span.End()
	start := time.Now()

	res, err := r.route(ctx, tenant, sqlText, true)

	t := "frontdoor.tenant." + tenant
	if err != nil {
		span.SetError(err)
		if errors.Is(err, socerr.ErrAdmission) {
			r.reg.Counter(t + ".rejects").Inc()
		}
		return nil, err
	}
	r.reg.Counter(t + ".ops").Inc()
	r.reg.Histogram(t + ".latency").Observe(time.Since(start))
	for _, w := range res.Waits {
		r.reg.Counter(t + ".wait." + w.Class).Add(w.TotalNS)
	}
	return res, nil
}

// AuditContext runs a control-plane statement as a tenant: same routing,
// epoch validation, and redirect handling as ExecContext, but admission
// is not charged and the tenant's data-plane series are not touched —
// operator audits must neither starve behind a noisy tenant's budget
// nor inflate its traffic stats.
func (r *Router) AuditContext(ctx context.Context, tenant, sqlText string) (*sqlengine.Result, error) {
	ctx, span := r.tracer.StartSpan(ctx, obs.TierFrontdoor, "router.audit")
	span.SetAttr("tenant", tenant)
	defer span.End()
	res, err := r.route(ctx, tenant, sqlText, false)
	if err != nil {
		span.SetError(err)
		return nil, err
	}
	return res, nil
}

// route resolves the tenant and forwards the statement, turning one
// typed redirect into a cache refresh + retry.
func (r *Router) route(ctx context.Context, tenant, sqlText string, metered bool) (*sqlengine.Result, error) {
	var res *sqlengine.Result
	var err error
	for attempt := 0; attempt < 2; attempt++ {
		var asg Assignment
		asg, err = r.assignment(tenant, attempt > 0)
		if err != nil {
			break
		}
		h := r.Host(asg.Cluster)
		if h == nil {
			err = fmt.Errorf("frontdoor: tenant %q placed on unknown cluster %q", tenant, asg.Cluster)
			break
		}
		if metered {
			res, err = h.Exec(ctx, tenant, asg.Epoch, sqlText)
		} else {
			res, err = h.ExecControl(ctx, tenant, asg.Epoch, sqlText)
		}
		if err == nil {
			break
		}
		if errors.Is(err, socerr.ErrTenantMoved) && attempt == 0 {
			// Stale cache: refresh from placement and retry exactly once.
			// A second redirect means the map is churning under us; the
			// caller sees the typed error and retries on its own clock.
			r.reg.Counter("frontdoor.tenant." + tenant + ".redirects").Inc()
			continue
		}
		break
	}
	return res, err
}
