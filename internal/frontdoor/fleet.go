package frontdoor

import (
	"fmt"

	"socrates/internal/cluster"
	"socrates/internal/obs"
	"socrates/internal/rbio"
	"socrates/internal/simdisk"
	"socrates/internal/xstore"
)

// FleetConfig describes a front-door deployment: M pooled clusters
// behind one router, N tenants placed round-robin across them.
type FleetConfig struct {
	// Clusters is the number of elastic pools (default 2).
	Clusters int
	// Tenants are placed round-robin across the pools at boot. More can
	// be added later with AddTenant.
	Tenants []string
	// AdmissionRate / AdmissionBurst set every tenant's token-bucket
	// budget in ops/sec (rate 0 = unlimited).
	AdmissionRate  float64
	AdmissionBurst float64
	// Seed drives every pool's simulated-device jitter streams
	// (per-pool lanes, so pools do not share randomness).
	Seed int64
	// Cluster, if set, supplies the base cluster.Config for pool i; the
	// fleet overrides Name and Seed. Nil gets a compact instant-profile
	// deployment (one secondary, one page server).
	Cluster func(i int) cluster.Config
	// Tracer / Metrics form the router-tier observability plane. Both
	// optional (nil-safe).
	Tracer  *obs.Tracer
	Metrics *obs.Registry
}

// Fleet is a booted front-door deployment: the placement service, the
// router, and the pooled clusters. It exists so tests, chaos, the bench
// harness, and the CLIs all assemble the tier the same way.
type Fleet struct {
	cfg       FleetConfig
	Placement *Placement
	Router    *Router
	hosts     []*Host
}

// NewFleet boots the pools, places the tenants, and wires the router.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Clusters <= 0 {
		cfg.Clusters = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	p := NewPlacement()
	f := &Fleet{cfg: cfg, Placement: p}
	f.Router = NewRouter(Options{Placement: p, Tracer: cfg.Tracer, Metrics: cfg.Metrics})
	for i := 0; i < cfg.Clusters; i++ {
		var ccfg cluster.Config
		if cfg.Cluster != nil {
			ccfg = cfg.Cluster(i)
		} else {
			ccfg = cluster.Config{
				Net:               rbio.NewInstantNetwork(),
				LZProfile:         simdisk.Instant,
				LocalSSD:          simdisk.Instant,
				XStore:            xstore.Config{Profile: simdisk.Instant},
				LZCapacity:        32 << 20,
				Secondaries:       1,
				PageServers:       1,
				PagesPerPartition: 1 << 20,
			}
		}
		ccfg.Name = hostID(i)
		ccfg.Seed = cfg.Seed*int64(cfg.Clusters) + int64(i)
		c, err := cluster.New(ccfg)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("frontdoor: pool %d boot: %w", i, err)
		}
		h := NewHost(hostID(i), c, p)
		f.hosts = append(f.hosts, h)
		f.Router.AddHost(h)
	}
	for i, t := range cfg.Tenants {
		f.AddTenant(t, i%cfg.Clusters)
	}
	f.Router.Refresh()
	return f, nil
}

func hostID(i int) string { return fmt.Sprintf("h%d", i) }

// AddTenant places a new tenant on pool i with the fleet's admission
// budget.
func (f *Fleet) AddTenant(tenant string, i int) {
	a := f.Placement.Assign(tenant, hostID(i))
	f.hosts[i].AddTenant(tenant, a.Epoch, f.cfg.AdmissionRate, f.cfg.AdmissionBurst)
}

// SetAdmission replaces one tenant's admission budget at its current
// home (rate ops/sec, burst; rate 0 = unlimited).
func (f *Fleet) SetAdmission(tenant string, rate, burst float64) bool {
	a, ok := f.Placement.Lookup(tenant)
	if !ok {
		return false
	}
	for _, h := range f.hosts {
		if h.ID() == a.Cluster {
			return h.SetAdmission(tenant, rate, burst)
		}
	}
	return false
}

// Hosts lists the fleet's pools.
func (f *Fleet) Hosts() []*Host { return f.hosts }

// Host returns pool i.
func (f *Fleet) Host(i int) *Host { return f.hosts[i] }

// Close tears down every pool.
func (f *Fleet) Close() {
	for _, h := range f.hosts {
		h.Cluster().Close()
	}
}
