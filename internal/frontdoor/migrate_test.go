package frontdoor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"socrates/internal/cluster"
	"socrates/internal/rbio"
	"socrates/internal/simdisk"
	"socrates/internal/socerr"
	"socrates/internal/xstore"
)

// seedTenant creates the kv table and n rows through the router.
func seedTenant(t *testing.T, f *Fleet, tenant string, n int) {
	t.Helper()
	mustExec(t, f, tenant, `CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)`)
	for i := 0; i < n; i++ {
		mustExec(t, f, tenant, fmt.Sprintf(`INSERT INTO kv VALUES ('k%03d', 'v%d')`, i, i))
	}
}

// auditTenant verifies each expected key/value through the router.
func auditTenant(t *testing.T, f *Fleet, tenant string, want map[string]string) {
	t.Helper()
	for k, v := range want {
		got, ok := queryOne(t, f, tenant, fmt.Sprintf(`SELECT v FROM kv WHERE k = '%s'`, k))
		if !ok {
			t.Errorf("tenant %s: key %s vanished", tenant, k)
			continue
		}
		if got != v {
			t.Errorf("tenant %s: key %s = %q, want %q", tenant, k, got, v)
		}
	}
}

// A live migration: rows written before the snapshot, during the live
// window (existing only in the XLOG tail), and after the cutover all
// survive; placement bumps the epoch; the source forgets the tenant.
func TestMigrateLive(t *testing.T) {
	f := testFleet(t, FleetConfig{Clusters: 2, Tenants: []string{"t0", "bystander"}})
	seedTenant(t, f, "t0", 10)
	want := map[string]string{}
	for i := 0; i < 10; i++ {
		want[fmt.Sprintf("k%03d", i)] = fmt.Sprintf("v%d", i)
	}

	before, _ := f.Placement.Lookup("t0")
	err := f.Migrate(context.Background(), "t0", "h1", WithAfterCopy(func() {
		// The live window: these exist only in the log tail.
		for i := 0; i < 5; i++ {
			k := fmt.Sprintf("live%d", i)
			mustExec(t, f, "t0", fmt.Sprintf(`INSERT INTO kv VALUES ('%s', 'tail')`, k))
			want[k] = "tail"
		}
	}))
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}

	after, _ := f.Placement.Lookup("t0")
	if after.Cluster != "h1" || after.Epoch != before.Epoch+1 {
		t.Fatalf("placement after migrate = %+v (before %+v)", after, before)
	}
	for _, tn := range f.Host(0).Tenants() {
		if tn == "t0" {
			t.Fatal("source still lists the migrated tenant")
		}
	}
	auditTenant(t, f, "t0", want)
	// And the tenant keeps serving writes at its new home.
	mustExec(t, f, "t0", `INSERT INTO kv VALUES ('post', 'cutover')`)
}

// Quiesced migration: the final restore replays an empty log tail.
func TestMigrateEmptyTail(t *testing.T) {
	f := testFleet(t, FleetConfig{Clusters: 2, Tenants: []string{"t0"}})
	seedTenant(t, f, "t0", 5)
	if err := f.Migrate(context.Background(), "t0", "h1"); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	want := map[string]string{}
	for i := 0; i < 5; i++ {
		want[fmt.Sprintf("k%03d", i)] = fmt.Sprintf("v%d", i)
	}
	auditTenant(t, f, "t0", want)
}

// Double cutover A→B→A: the return trip reconciles against the stale
// first-residence state on A — rows deleted while on B must not
// resurrect, rows updated on B must show the B-era values.
func TestMigrateDoubleCutover(t *testing.T) {
	f := testFleet(t, FleetConfig{Clusters: 2, Tenants: []string{"t0"}})
	seedTenant(t, f, "t0", 8)
	ctx := context.Background()
	if err := f.Migrate(ctx, "t0", "h1"); err != nil {
		t.Fatalf("migrate A→B: %v", err)
	}
	mustExec(t, f, "t0", `DELETE FROM kv WHERE k = 'k000'`)
	mustExec(t, f, "t0", `UPDATE kv SET v = 'updated-on-b' WHERE k = 'k001'`)
	mustExec(t, f, "t0", `INSERT INTO kv VALUES ('b-era', 'fresh')`)
	if err := f.Migrate(ctx, "t0", "h0"); err != nil {
		t.Fatalf("migrate B→A: %v", err)
	}
	a, _ := f.Placement.Lookup("t0")
	if a.Cluster != "h0" || a.Epoch != 3 {
		t.Fatalf("placement after round trip = %+v", a)
	}
	if _, ok := queryOne(t, f, "t0", `SELECT v FROM kv WHERE k = 'k000'`); ok {
		t.Fatal("deleted row resurrected from the stale first residence")
	}
	auditTenant(t, f, "t0", map[string]string{
		"k001":  "updated-on-b",
		"b-era": "fresh",
		"k002":  "v2",
	})
}

// Snapshot taken mid-checkpoint: an aggressive checkpoint cadence plus
// a concurrent writer ensure the backup's FlushForBackup races live
// checkpoint traffic. Every write acked before or during the migration
// must be present afterwards.
func TestMigrateMidCheckpoint(t *testing.T) {
	f := testFleet(t, FleetConfig{
		Clusters: 2, Tenants: []string{"t0"},
		Cluster: func(i int) cluster.Config {
			return cluster.Config{
				Net:               rbio.NewInstantNetwork(),
				LZProfile:         simdisk.Instant,
				LocalSSD:          simdisk.Instant,
				XStore:            xstore.Config{Profile: simdisk.Instant},
				LZCapacity:        32 << 20,
				CheckpointEvery:   time.Millisecond,
				Secondaries:       1,
				PageServers:       1,
				PagesPerPartition: 1 << 20,
			}
		},
	})
	seedTenant(t, f, "t0", 20)

	var mu sync.Mutex
	acked := map[string]string{}
	for i := 0; i < 20; i++ {
		acked[fmt.Sprintf("k%03d", i)] = fmt.Sprintf("v%d", i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("cc%04d", i)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_, err := f.Router.ExecContext(ctx, "t0",
				fmt.Sprintf(`INSERT INTO kv VALUES ('%s', 'w')`, k))
			cancel()
			if err == nil {
				mu.Lock()
				acked[k] = "w"
				mu.Unlock()
			}
		}
	}()

	if err := f.Migrate(context.Background(), "t0", "h1"); err != nil {
		close(stop)
		wg.Wait()
		t.Fatalf("migrate under write load: %v", err)
	}
	close(stop)
	wg.Wait()
	mu.Lock()
	want := make(map[string]string, len(acked))
	for k, v := range acked {
		want[k] = v
	}
	mu.Unlock()
	auditTenant(t, f, "t0", want)
}

// Cutover racing an in-flight commit: a statement is mid-execution when
// the drain begins. The drain must wait it out (its write survives) —
// and a request arriving during the drain parks on the gate, follows
// the redirect after cutover, and succeeds at the new home.
func TestMigrateRacingInflightCommit(t *testing.T) {
	f := testFleet(t, FleetConfig{Clusters: 2, Tenants: []string{"t0"}})
	seedTenant(t, f, "t0", 3)

	inflight := make(chan error, 1)
	duringDrain := make(chan error, 1)
	err := f.Migrate(context.Background(), "t0", "h1", WithAfterCopy(func() {
		// Launched here, racing the drain that begins when this hook
		// returns. No synchronization on purpose: whichever side wins,
		// an acked write must survive and a parked one must redirect.
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, err := f.Router.ExecContext(ctx, "t0", `INSERT INTO kv VALUES ('race', 'acked')`)
			inflight <- err
		}()
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, err := f.Router.ExecContext(ctx, "t0", `INSERT INTO kv VALUES ('parked', 'redirected')`)
			duringDrain <- err
		}()
	}))
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight commit failed across cutover: %v", err)
	}
	if err := <-duringDrain; err != nil {
		t.Fatalf("drain-parked request failed: %v", err)
	}
	auditTenant(t, f, "t0", map[string]string{"race": "acked", "parked": "redirected"})
}

// Migration to the current home is a no-op; unknown tenants and pools
// are typed errors; a drain interrupted by ctx cancellation aborts back
// to serving on the source.
func TestMigrateEdges(t *testing.T) {
	f := testFleet(t, FleetConfig{Clusters: 2, Tenants: []string{"t0"}})
	seedTenant(t, f, "t0", 2)
	ctx := context.Background()
	if err := f.Migrate(ctx, "t0", "h0"); err != nil {
		t.Fatalf("no-op migrate errored: %v", err)
	}
	if err := f.Migrate(ctx, "ghost", "h1"); err == nil {
		t.Fatal("migrate of unknown tenant succeeded")
	}
	if err := f.Migrate(ctx, "t0", "h9"); err == nil {
		t.Fatal("migrate to unknown pool succeeded")
	}

	// Cancel during the drain: the hook parks a request (keeping
	// inflight > 0 is not needed — cancellation hits the drain select),
	// then cancels. The tenant must still serve on h0.
	cctx, cancel := context.WithCancel(ctx)
	err := f.Migrate(cctx, "t0", "h1", WithAfterCopy(func() {
		go func() {
			time.Sleep(50 * time.Millisecond) //socrates:sleep-ok test orchestration: cancel lands mid-drain
			cancel()
		}()
		// Park one request so the drain cannot finish instantly.
		go func() {
			pctx, pcancel := context.WithTimeout(ctx, 10*time.Second)
			defer pcancel()
			//socrates:ignore-err the request is a drain blocker; its outcome is irrelevant
			_, _ = f.Router.ExecContext(pctx, "t0", `SELECT v FROM kv WHERE k = 'k000'`)
		}()
	}))
	if err == nil {
		t.Log("drain finished before cancellation; abort path not exercised this run")
	} else if !errors.Is(err, socerr.ErrTimeout) && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled migrate returned %v", err)
	}
	// Either way the tenant serves.
	mustExec(t, f, "t0", `INSERT INTO kv VALUES ('after-abort', 'ok')`)
}
