package frontdoor

import (
	"sync"
	"time"
)

// tokenBucket is the per-tenant admission gate: rate tokens/second with
// a fixed burst. admit never blocks — an empty bucket is an immediate
// socerr.ErrAdmission, because queueing over-budget work inside the pool
// is exactly the noisy-neighbor latency this gate exists to prevent.
// A zero rate disables the gate (unlimited tenant).
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; 0 = unlimited
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	if burst <= 0 {
		burst = rate
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// admit takes one token if available.
func (b *tokenBucket) admit(now time.Time) bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
