package frontdoor

import (
	"context"
	"fmt"
	"sync"
	"time"

	"socrates/internal/cluster"
	"socrates/internal/compute"
	"socrates/internal/socerr"
	"socrates/internal/sqlengine"
)

// Host joins one cluster to the front door: the set of tenants resident
// on it (the elastic pool), their admission buckets, and the epoch
// checks that keep stale routers honest. The host is the enforcement
// point of the placement protocol — a request carrying the wrong epoch,
// or naming a tenant that no longer lives here, gets the typed
// socerr.ErrTenantMoved redirect instead of service.
type Host struct {
	id        string
	c         *cluster.Cluster
	placement *Placement

	mu      sync.Mutex
	primary *compute.Primary // the front the tenant DBs were built on
	tenants map[string]*tenantState
}

// tenantState is one tenant's residence on a host.
type tenantState struct {
	epoch  uint64
	sql    *sqlengine.DB
	bucket *tokenBucket
	rate   float64
	burst  float64

	inflight int
	draining bool
	drained  chan struct{} // closed when draining and inflight hits 0
	gate     chan struct{} // closed at cutover; drain-blocked requests wake and redirect
}

// NewHost wraps a cluster as one elastic pool of the front door.
func NewHost(id string, c *cluster.Cluster, p *Placement) *Host {
	return &Host{id: id, c: c, placement: p, primary: c.Primary(),
		tenants: make(map[string]*tenantState)}
}

// ID names the host; placement assignments reference it.
func (h *Host) ID() string { return h.id }

// Cluster exposes the pool's underlying deployment.
func (h *Host) Cluster() *cluster.Cluster { return h.c }

// Tenants lists the tenants currently resident on this host.
func (h *Host) Tenants() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.tenants))
	for t := range h.tenants {
		out = append(out, t)
	}
	return out
}

// AddTenant makes a tenant resident at the given epoch with the given
// admission budget (rate ops/sec, burst; rate 0 = unlimited). During
// migration the destination host adopts the tenant at the new epoch
// before the placement map names it, so a redirected request can never
// arrive before its home exists.
func (h *Host) AddTenant(tenant string, epoch uint64, rate, burst float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.syncPrimaryLocked()
	h.tenants[tenant] = &tenantState{
		epoch:  epoch,
		sql:    sqlengine.NewTenant(h.primary.Engine, tenant),
		bucket: newTokenBucket(rate, burst),
		rate:   rate,
		burst:  burst,
	}
}

// SetAdmission replaces a resident tenant's admission budget without
// touching its SQL front or epoch. Reports whether the tenant is
// resident here.
func (h *Host) SetAdmission(tenant string, rate, burst float64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	ts, ok := h.tenants[tenant]
	if !ok {
		return false
	}
	ts.bucket = newTokenBucket(rate, burst)
	ts.rate = rate
	ts.burst = burst
	return true
}

// AdmissionBudget reports a resident tenant's admission settings (used
// by the migrator to carry the budget to the destination).
func (h *Host) AdmissionBudget(tenant string) (rate, burst float64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ts, ok := h.tenants[tenant]
	if !ok {
		return 0, 0, false
	}
	return ts.rate, ts.burst, true
}

// syncPrimaryLocked self-heals after a failover: if the cluster's
// primary changed since the tenant fronts were built, rebuild every
// front on the new primary's engine. Called with h.mu held; does no
// fabric work (Primary() and NewTenant are in-memory).
func (h *Host) syncPrimaryLocked() {
	p := h.c.Primary()
	if p == h.primary {
		return
	}
	h.primary = p
	for name, ts := range h.tenants {
		ts.sql = sqlengine.NewTenant(p.Engine, name)
	}
}

// Exec validates the request's placement epoch, applies admission
// control, and runs the statement on the tenant's namespaced SQL front.
// A request for a non-resident tenant or a stale epoch returns the
// typed redirect; a request during a drain blocks until the cutover
// completes (or ctx expires) and then redirects, so clients ride
// through a migration without observing failures.
func (h *Host) Exec(ctx context.Context, tenant string, epoch uint64, sqlText string) (*sqlengine.Result, error) {
	return h.exec(ctx, tenant, epoch, sqlText, true)
}

// ExecControl is the control-plane variant of Exec: same placement and
// drain semantics, but no admission charge. Operator probes (audits,
// health checks, rebalancer scans) must neither be starved by a
// tenant's own data-plane budget nor eat into it.
func (h *Host) ExecControl(ctx context.Context, tenant string, epoch uint64, sqlText string) (*sqlengine.Result, error) {
	return h.exec(ctx, tenant, epoch, sqlText, false)
}

func (h *Host) exec(ctx context.Context, tenant string, epoch uint64, sqlText string, metered bool) (*sqlengine.Result, error) {
	h.mu.Lock()
	ts, ok := h.tenants[tenant]
	if !ok {
		h.mu.Unlock()
		return nil, h.movedErr(tenant)
	}
	if ts.draining {
		gate := ts.gate
		h.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, socerr.FromContext(ctx.Err())
		case <-gate:
			return nil, h.movedErr(tenant)
		}
	}
	if epoch != ts.epoch {
		h.mu.Unlock()
		return nil, h.movedErr(tenant)
	}
	if metered && !ts.bucket.admit(time.Now()) {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q over budget at cluster %q",
			socerr.ErrAdmission, tenant, h.id)
	}
	h.syncPrimaryLocked()
	db := ts.sql
	ts.inflight++
	h.mu.Unlock()

	res, err := db.ExecContext(ctx, sqlText)

	h.mu.Lock()
	ts.inflight--
	if ts.draining && ts.inflight == 0 && ts.drained != nil {
		close(ts.drained)
		ts.drained = nil
	}
	h.mu.Unlock()
	return res, err
}

// movedErr builds the typed redirect from the placement service's
// current view (the host validates epochs, the placement map owns them).
func (h *Host) movedErr(tenant string) error {
	if a, ok := h.placement.Lookup(tenant); ok {
		return &socerr.TenantMovedError{Tenant: tenant, Cluster: a.Cluster, Epoch: a.Epoch}
	}
	return &socerr.TenantMovedError{Tenant: tenant}
}

// beginDrain stops admitting new requests for the tenant (they block on
// the gate) and returns a channel that closes once every in-flight
// request has finished. After it closes, every acknowledged write is in
// the commit log — the migrator's final tail replay misses nothing.
func (h *Host) beginDrain(tenant string) (<-chan struct{}, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ts, ok := h.tenants[tenant]
	if !ok {
		return nil, fmt.Errorf("frontdoor: drain of non-resident tenant %q on %q", tenant, h.id)
	}
	if ts.draining {
		return nil, fmt.Errorf("frontdoor: tenant %q already draining on %q", tenant, h.id)
	}
	ts.draining = true
	ts.gate = make(chan struct{})
	done := make(chan struct{})
	if ts.inflight == 0 {
		close(done)
		return done, nil
	}
	ts.drained = done
	return done, nil
}

// abortDrain rolls a failed migration back to serving: requests blocked
// on the gate wake, redirect, and land right back here.
func (h *Host) abortDrain(tenant string) {
	h.mu.Lock()
	ts, ok := h.tenants[tenant]
	var gate chan struct{}
	if ok && ts.draining {
		ts.draining = false
		gate = ts.gate
		ts.gate = nil
		ts.drained = nil
	}
	h.mu.Unlock()
	if gate != nil {
		close(gate)
	}
}

// finishDrain completes the cutover: the tenant stops being resident
// and every request blocked on the gate wakes into the typed redirect,
// which the router resolves against the already-updated placement map.
func (h *Host) finishDrain(tenant string) {
	h.mu.Lock()
	ts, ok := h.tenants[tenant]
	delete(h.tenants, tenant)
	var gate chan struct{}
	if ok {
		gate = ts.gate
	}
	h.mu.Unlock()
	if gate != nil {
		close(gate)
	}
}
