//go:build chaosfault

package frontdoor

// faultSkipLogTail plants the skip-log-tail migration bug: the final
// restore stops at the snapshot LSN, so every write acked during the
// live window (after the bulk-copy snapshot, before the drain) vanishes
// at the destination. The chaos oracle's migration audit MUST catch
// this — a harness that stays silent against a known-planted
// acked-write loss tests nothing.
func faultSkipLogTail() bool { return true }
