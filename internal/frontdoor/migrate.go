package frontdoor

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"socrates/internal/engine"
	"socrates/internal/page"
	"socrates/internal/socerr"
	"socrates/internal/sqlengine"
)

// MigrateOption tunes one migration.
type MigrateOption func(*migrateOptions)

type migrateOptions struct {
	afterCopy func()
}

// WithAfterCopy installs a hook that runs after the bulk copy and
// before the drain — the live window where writes keep landing on the
// source and exist only in the XLOG tail. Tests and the chaos harness
// use it to inject exactly the traffic a skip-log-tail bug would lose,
// and to race failovers against the cutover.
func WithAfterCopy(fn func()) MigrateOption {
	return func(o *migrateOptions) { o.afterCopy = fn }
}

// Migrate moves a tenant to the named destination pool live:
//
//  1. Bulk copy — an O(1) XStore snapshot of the source, restored to
//     end-of-log (snapshot + XLOG tail replay), applied to the
//     destination while writes keep flowing on the source.
//  2. Drain — the source stops admitting the tenant's requests (they
//     block on the cutover gate) and waits out the in-flight ones.
//     Commit acks gate on hardening, so after the drain every acked
//     write is in the log.
//  3. Final tail — the same snapshot restored again to end-of-log now
//     replays the writes of the live window; the delta is reconciled
//     into the destination in one transaction (the reader-atomic
//     cutover).
//  4. Epoch bump — the destination adopts the tenant at epoch+1, the
//     placement map moves, and the drained source releases its gate:
//     blocked requests wake into the typed redirect and the router
//     retries them at the new home. Zero acked writes are lost.
//
// The migration state machine is: serving → copying → draining →
// cutover → serving (dst). Every failure path before the placement
// Move aborts back to serving on the source.
func (f *Fleet) Migrate(ctx context.Context, tenant, dst string, opts ...MigrateOption) error {
	var o migrateOptions
	for _, fn := range opts {
		fn(&o)
	}
	asg, ok := f.Placement.Lookup(tenant)
	if !ok {
		return fmt.Errorf("frontdoor: migrate of unknown tenant %q", tenant)
	}
	if asg.Cluster == dst {
		return nil
	}
	src := f.hostByID(asg.Cluster)
	dstH := f.hostByID(dst)
	if src == nil || dstH == nil {
		return fmt.Errorf("frontdoor: migrate %q: unknown pool (%q → %q)", tenant, asg.Cluster, dst)
	}

	prefix := sqlengine.TenantPrefix(tenant)
	migName := fmt.Sprintf("mig-%s-%d", tenant, asg.Epoch)

	// Phase 1: bulk copy while the tenant keeps serving on the source.
	if err := src.Cluster().Backup(migName); err != nil {
		return fmt.Errorf("frontdoor: migrate %q: snapshot: %w", tenant, err)
	}
	img, _, err := src.Cluster().PointInTimeRestoreContext(ctx, migName, 0)
	if err != nil {
		return fmt.Errorf("frontdoor: migrate %q: bulk restore: %w", tenant, err)
	}
	if err := copyTenant(ctx, img, dstH, prefix); err != nil {
		return fmt.Errorf("frontdoor: migrate %q: bulk copy: %w", tenant, err)
	}

	if o.afterCopy != nil {
		o.afterCopy()
	}

	// Phase 2: drain, then replay the tail of the live window.
	done, err := src.beginDrain(tenant)
	if err != nil {
		return err
	}
	select {
	case <-ctx.Done():
		src.abortDrain(tenant)
		return socerr.FromContext(ctx.Err())
	case <-done:
	}
	target := page.LSN(0) // 0 = end of log: snapshot + full XLOG tail
	if faultSkipLogTail() {
		// Planted bug (chaosfault builds only): pin the final restore to
		// the snapshot LSN, silently dropping the live window's tail.
		if lsn, ok := src.Cluster().BackupLSN(migName); ok {
			target = lsn
		}
	}
	final, _, err := src.Cluster().PointInTimeRestoreContext(ctx, migName, target)
	if err != nil {
		src.abortDrain(tenant)
		return fmt.Errorf("frontdoor: migrate %q: tail restore: %w", tenant, err)
	}
	if err := copyTenant(ctx, final, dstH, prefix); err != nil {
		src.abortDrain(tenant)
		return fmt.Errorf("frontdoor: migrate %q: tail copy: %w", tenant, err)
	}

	// Phase 3: cutover. Destination adopts first, placement publishes
	// second, the source gate opens last — a redirected request can
	// never arrive before its new home exists.
	rate, burst, _ := src.AdmissionBudget(tenant)
	newEpoch := asg.Epoch + 1
	dstH.AddTenant(tenant, newEpoch, rate, burst)
	if _, err := f.Placement.Move(tenant, dst, newEpoch); err != nil {
		dstH.finishDrain(tenant) // back the adoption out
		src.abortDrain(tenant)
		return err
	}
	src.finishDrain(tenant)

	// Scratch cleanup: the migration snapshot is no longer needed (the
	// restored images are in-memory and garbage-collected).
	//socrates:ignore-err snapshot cleanup is advisory; a leaked snapshot costs only XStore metadata
	_ = src.Cluster().Store.DeleteSnapshot(src.ID() + "/" + migName)
	return nil
}

func (f *Fleet) hostByID(id string) *Host {
	for _, h := range f.hosts {
		if h.ID() == id {
			return h
		}
	}
	return nil
}

// copyTenant reconciles the destination pool with the tenant's image:
// every tenant table and schema row in the image is upserted, and rows
// or tables present at the destination but absent from the image (stale
// state from an earlier residence, or deletions during the live window)
// are removed. All row changes land in one destination transaction, so
// the cutover is atomic for destination readers. A destination failover
// mid-copy is absorbed by retrying on the fresh primary.
func copyTenant(ctx context.Context, img *engine.Engine, dst *Host, prefix string) error {
	tables, rows, schemas, err := readImage(img, prefix)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		eng := dst.Cluster().Primary().Engine
		if lastErr = applyImage(ctx, eng, prefix, tables, rows, schemas); lastErr == nil {
			return nil
		}
	}
	return lastErr
}

// readImage collects the tenant's tables, rows, and schema entries from
// a restored image.
func readImage(img *engine.Engine, prefix string) (tables []string, rows map[string]map[string][]byte, schemas map[string][]byte, err error) {
	all, err := img.Tables()
	if err != nil {
		return nil, nil, nil, err
	}
	ro := img.BeginRO()
	defer ro.Abort()
	rows = make(map[string]map[string][]byte)
	for _, t := range all {
		if !strings.HasPrefix(t, prefix) {
			continue
		}
		tables = append(tables, t)
		m := make(map[string][]byte)
		err := ro.Scan(t, nil, nil, func(k, v []byte) bool {
			m[string(k)] = append([]byte(nil), v...)
			return true
		})
		if err != nil {
			return nil, nil, nil, err
		}
		rows[t] = m
	}
	schemas = make(map[string][]byte)
	if img.HasTable(sqlengine.SchemaTable) {
		err := ro.Scan(sqlengine.SchemaTable, nil, nil, func(k, v []byte) bool {
			if strings.HasPrefix(string(k), prefix) {
				schemas[string(k)] = append([]byte(nil), v...)
			}
			return true
		})
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return tables, rows, schemas, nil
}

// applyImage writes one tenant image onto the destination engine.
func applyImage(ctx context.Context, eng *engine.Engine, prefix string,
	tables []string, rows map[string]map[string][]byte, schemas map[string][]byte) error {
	ensure := func(name string) error {
		err := eng.CreateTableContext(ctx, name)
		if errors.Is(err, engine.ErrTableExists) {
			return nil
		}
		return err
	}
	if err := ensure(sqlengine.SchemaTable); err != nil {
		return err
	}
	for _, t := range tables {
		if err := ensure(t); err != nil {
			return err
		}
	}
	// Stale tenant tables at the destination (an earlier residence) that
	// the image no longer has get their rows and schema entries cleared;
	// the engine reclaims table pages in the background, like DROP.
	inImage := make(map[string]bool, len(tables))
	for _, t := range tables {
		inImage[t] = true
	}
	dstTables, err := eng.Tables()
	if err != nil {
		return err
	}
	var stale []string
	for _, t := range dstTables {
		if strings.HasPrefix(t, prefix) && !inImage[t] {
			stale = append(stale, t)
		}
	}

	tx := eng.BeginContext(ctx)
	abort := func(err error) error { tx.Abort(); return err }
	for _, t := range tables {
		want := rows[t]
		var extra [][]byte
		err := tx.Scan(t, nil, nil, func(k, _ []byte) bool {
			if _, ok := want[string(k)]; !ok {
				extra = append(extra, append([]byte(nil), k...))
			}
			return true
		})
		if err != nil {
			return abort(err)
		}
		for k, v := range want {
			if err := tx.Put(t, []byte(k), v); err != nil {
				return abort(err)
			}
		}
		for _, k := range extra {
			if err := tx.Delete(t, k); err != nil {
				return abort(err)
			}
		}
	}
	for _, t := range stale {
		var keys [][]byte
		err := tx.Scan(t, nil, nil, func(k, _ []byte) bool {
			keys = append(keys, append([]byte(nil), k...))
			return true
		})
		if err != nil {
			return abort(err)
		}
		for _, k := range keys {
			if err := tx.Delete(t, k); err != nil {
				return abort(err)
			}
		}
	}
	var staleSchemas [][]byte
	err = tx.Scan(sqlengine.SchemaTable, nil, nil, func(k, _ []byte) bool {
		if strings.HasPrefix(string(k), prefix) {
			if _, ok := schemas[string(k)]; !ok {
				staleSchemas = append(staleSchemas, append([]byte(nil), k...))
			}
		}
		return true
	})
	if err != nil {
		return abort(err)
	}
	for k, v := range schemas {
		if err := tx.Put(sqlengine.SchemaTable, []byte(k), v); err != nil {
			return abort(err)
		}
	}
	for _, k := range staleSchemas {
		if err := tx.Delete(sqlengine.SchemaTable, k); err != nil {
			return abort(err)
		}
	}
	return tx.Commit()
}
