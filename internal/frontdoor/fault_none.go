//go:build !chaosfault

package frontdoor

// faultSkipLogTail reports whether the planted migration bug — the
// final restore pinned to the snapshot LSN, skipping the XLOG tail of
// the live window — is active. Production builds: never.
func faultSkipLogTail() bool { return false }
