package frontdoor

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"socrates/internal/obs"
	"socrates/internal/socerr"
)

func testFleet(t *testing.T, cfg FleetConfig) *Fleet {
	t.Helper()
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatalf("fleet boot: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

func mustExec(t *testing.T, f *Fleet, tenant, sql string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := f.Router.ExecContext(ctx, tenant, sql); err != nil {
		t.Fatalf("tenant %s: %s: %v", tenant, sql, err)
	}
}

func queryOne(t *testing.T, f *Fleet, tenant, sql string) (string, bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := f.Router.ExecContext(ctx, tenant, sql)
	if err != nil {
		t.Fatalf("tenant %s: %s: %v", tenant, sql, err)
	}
	if len(res.Rows) == 0 {
		return "", false
	}
	return res.Rows[0][0].String(), true
}

func TestPlacementEpochs(t *testing.T) {
	p := NewPlacement()
	a := p.Assign("t0", "h0")
	if a.Epoch != 1 || a.Cluster != "h0" {
		t.Fatalf("initial assign = %+v", a)
	}
	if _, err := p.Move("t0", "h1", 1); err == nil {
		t.Fatal("non-advancing epoch accepted")
	}
	m, err := p.Move("t0", "h1", 2)
	if err != nil || m.Epoch != 2 || m.Cluster != "h1" {
		t.Fatalf("move = %+v, %v", m, err)
	}
	if _, err := p.Move("ghost", "h1", 5); err == nil {
		t.Fatal("move of unknown tenant accepted")
	}
	ver, snap := p.Snapshot()
	if ver != 2 || len(snap) != 1 || snap[0].Epoch != 2 {
		t.Fatalf("snapshot = v%d %+v", ver, snap)
	}
}

// Two tenants on the same pool: same table names, fully isolated data,
// served through the one router.
func TestRouterTenantIsolation(t *testing.T) {
	f := testFleet(t, FleetConfig{Clusters: 1, Tenants: []string{"t0", "t1"}})
	for _, tn := range []string{"t0", "t1"} {
		mustExec(t, f, tn, `CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)`)
		mustExec(t, f, tn, fmt.Sprintf(`INSERT INTO kv VALUES ('x', 'owned-by-%s')`, tn))
	}
	for _, tn := range []string{"t0", "t1"} {
		got, ok := queryOne(t, f, tn, `SELECT v FROM kv WHERE k = 'x'`)
		if !ok || got != "owned-by-"+tn {
			t.Fatalf("tenant %s read %q, want owned-by-%s", tn, got, tn)
		}
	}
}

func TestRouterUnknownTenant(t *testing.T) {
	f := testFleet(t, FleetConfig{Clusters: 1})
	_, err := f.Router.ExecContext(context.Background(), "nobody", `SELECT 1`)
	if err == nil {
		t.Fatal("unknown tenant served")
	}
}

// A tenant over its token-bucket budget gets ErrAdmission — not
// ErrBackpressure — while a co-resident tenant keeps full service.
func TestAdmissionControl(t *testing.T) {
	f := testFleet(t, FleetConfig{
		Clusters: 1, Tenants: []string{"noisy", "victim"},
		AdmissionRate: 50, AdmissionBurst: 5,
	})
	for _, tn := range []string{"noisy", "victim"} {
		mustExec(t, f, tn, `CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)`)
	}
	ctx := context.Background()
	rejected := 0
	for i := 0; i < 40; i++ {
		_, err := f.Router.ExecContext(ctx, "noisy",
			fmt.Sprintf(`INSERT INTO kv VALUES ('n%d', 'v')`, i))
		switch {
		case err == nil:
		case errors.Is(err, socerr.ErrAdmission):
			rejected++
			if errors.Is(err, socerr.ErrBackpressure) {
				t.Fatalf("admission rejection classified as backpressure: %v", err)
			}
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if rejected == 0 {
		t.Fatal("40 immediate ops at burst 5 saw zero admission rejections")
	}
	// The victim's own bucket is untouched: its burst admits these.
	for i := 0; i < 3; i++ {
		mustExec(t, f, "victim", fmt.Sprintf(`INSERT INTO kv VALUES ('v%d', 'v')`, i))
	}
}

// A second router with a cold/stale cache transparently follows the
// typed redirect after a migration: one refresh, one retry, no error
// surfaces to the client.
func TestStaleRouterRedirect(t *testing.T) {
	reg := obs.NewRegistry()
	f := testFleet(t, FleetConfig{Clusters: 2, Tenants: []string{"t0"}, Metrics: reg})
	mustExec(t, f, "t0", `CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)`)
	mustExec(t, f, "t0", `INSERT INTO kv VALUES ('x', 'v1')`)

	// A second stateless router over the same fleet, cache warmed now.
	r2 := NewRouter(Options{Placement: f.Placement, Metrics: reg})
	for _, h := range f.Hosts() {
		r2.AddHost(h)
	}
	r2.Refresh()

	if err := f.Migrate(context.Background(), "t0", "h1"); err != nil {
		t.Fatalf("migrate: %v", err)
	}

	// r2 still maps t0 → h0; the request must redirect and succeed.
	res, err := r2.ExecContext(context.Background(), "t0", `SELECT v FROM kv WHERE k = 'x'`)
	if err != nil {
		t.Fatalf("stale-cache exec: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "v1" {
		t.Fatalf("stale-cache read = %v", res.Rows)
	}
	if got := reg.Snapshot().Counters["frontdoor.tenant.t0.redirects"]; got == 0 {
		t.Fatal("redirect was not accounted")
	}
}

// The per-tenant observability plane: ops, latency, and wait-class
// series land under frontdoor.tenant.<t>.*.
func TestTenantLabeledMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	f := testFleet(t, FleetConfig{Clusters: 1, Tenants: []string{"t0"}, Metrics: reg})
	mustExec(t, f, "t0", `CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)`)
	mustExec(t, f, "t0", `INSERT INTO kv VALUES ('x', 'v')`)
	snap := reg.Snapshot()
	if snap.Counters["frontdoor.tenant.t0.ops"] < 2 {
		t.Fatalf("ops counter = %d, want >= 2", snap.Counters["frontdoor.tenant.t0.ops"])
	}
	if _, ok := snap.Histograms["frontdoor.tenant.t0.latency"]; !ok {
		t.Fatal("latency histogram missing")
	}
}

func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(10, 2)
	now := time.Now()
	if !b.admit(now) || !b.admit(now) {
		t.Fatal("burst tokens rejected")
	}
	if b.admit(now) {
		t.Fatal("empty bucket admitted")
	}
	if !b.admit(now.Add(200 * time.Millisecond)) {
		t.Fatal("refilled bucket rejected")
	}
	var unlimited *tokenBucket
	if !unlimited.admit(now) || !newTokenBucket(0, 0).admit(now) {
		t.Fatal("unlimited bucket rejected")
	}
}
