// Package netmux is the multiplexed, pipelined RPC fabric all
// inter-tier Socrates traffic rides on. It fixes the two performance
// sins of the original transport — one outstanding RPC per connection,
// and connection poisoning on timeout — that left the GetPage@LSN
// (§4.4) and log-feed (§4.2/§4.3) wires mostly idle.
//
// The pieces, bottom-up:
//
//   - MuxConn: one stream carrying many concurrent calls. Every request
//     frame is tagged with a monotonically assigned 8-byte request ID; a
//     per-connection demux goroutine pairs out-of-order responses to
//     their waiting callers by ID. A timed-out caller abandons its ID
//     and walks away — the late response is dropped when it arrives and
//     the connection survives. Only a genuinely torn frame (partial
//     write, undecodable response, unexpected kind) kills a connection.
//
//   - Pool: N MuxConns to one destination with round-robin dispatch,
//     lazy dialing, and health-based eviction (a conn that turns
//     unavailable is closed and replaced on next use). The pool bounds
//     work with a per-destination in-flight cap plus a bounded wait
//     queue: callers beyond the cap wait for a slot; callers beyond the
//     queue bound fail fast with socerr.ErrBackpressure instead of
//     piling up goroutines.
//
//   - Coalescer: compute-side singleflight for GetPage@LSN misses.
//     Concurrent misses for the same page at compatible LSNs share one
//     wire RPC.
//
//   - DialTCP: hello-first negotiation. A fixed v1-layout MsgPing goes
//     out in sequential framing (every protocol version decodes it); if
//     the peer's advertised version is ≥ rbio.VersionMux the socket
//     switches to mux framing, otherwise the same socket is kept with
//     the old sequential framing — wire compatibility with v2/v1 peers
//     costs one round trip, never a reconnect.
//
// The package is zero-dependency (stdlib + the repo's own rbio/obs/
// page/socerr) and transport-agnostic: a Pool works equally over TCP
// mux conns and the in-process simulated fabric.
package netmux

import (
	"socrates/internal/obs"
)

// Metrics bundles the fabric's obs instruments. All fields are non-nil
// after NewMetrics; a nil *Metrics disables instrumentation (every
// method on the types below tolerates it).
type Metrics struct {
	Inflight     *obs.Gauge     // calls currently on the wire per process
	QueueDepth   *obs.Gauge     // callers waiting for an in-flight slot
	QueueWait    *obs.Histogram // time spent waiting for a slot
	Backpressure *obs.Counter   // fail-fast rejections (queue bound hit)
	Dials        *obs.Counter   // connections opened by pools
	Evictions    *obs.Counter   // connections evicted (unhealthy/severed)
	LateDrops    *obs.Counter   // responses dropped by ID after abandonment
	CoalesceHits *obs.Counter   // GetPage misses served by a shared RPC
	CoalesceMiss *obs.Counter   // GetPage misses that went to the wire

	// Waits, if set, receives wait-event accounting: netmux.queue while a
	// caller waits for an in-flight slot, netmux.rtt while a call is on
	// the wire. NewMetrics leaves it nil; the cluster wires it so all
	// fabric waits land under one pseudo-tier.
	Waits *obs.WaitRecorder
}

// waits returns the wait recorder, tolerating a nil receiver. A nil
// recorder still attributes waits to the context's profile and span.
func (m *Metrics) waits() *obs.WaitRecorder {
	if m == nil {
		return nil
	}
	return m.Waits
}

// NewMetrics registers the fabric's instruments on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Inflight:     r.Gauge("netmux.inflight"),
		QueueDepth:   r.Gauge("netmux.queue.depth"),
		QueueWait:    r.Histogram("netmux.queue.wait"),
		Backpressure: r.Counter("netmux.backpressure.trips"),
		Dials:        r.Counter("netmux.conn.dials"),
		Evictions:    r.Counter("netmux.conn.evictions"),
		LateDrops:    r.Counter("netmux.late.drops"),
		CoalesceHits: r.Counter("netmux.coalesce.hits"),
		CoalesceMiss: r.Counter("netmux.coalesce.misses"),
	}
}
