package netmux

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/socerr"
)

// TestCoalesceJoinersShareOneRPC: N concurrent misses for the same page
// at compatible LSNs issue exactly ONE wire RPC.
func TestCoalesceJoinersShareOneRPC(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	c := NewCoalescer(m)

	var rpcs atomic.Int64
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	fn := func() (*rbio.Response, error) {
		rpcs.Add(1)
		close(leaderIn)
		<-release
		resp := rbio.Ok()
		resp.LSN = 42
		return resp, nil
	}

	const joiners = 8
	var wg sync.WaitGroup
	results := make([]*rbio.Response, joiners+1)
	sharedFlags := make([]bool, joiners+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, shared, err := c.Do(context.Background(), page.ID(7), 10, fn)
		if err != nil {
			t.Error(err)
		}
		results[0], sharedFlags[0] = resp, shared
	}()
	<-leaderIn // the leader holds the flight open
	for i := 1; i <= joiners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Joiner LSN requirements at or below the leader's 10.
			resp, shared, err := c.Do(context.Background(), page.ID(7), page.LSN(i%11), fn)
			if err != nil {
				t.Error(err)
			}
			results[i], sharedFlags[i] = resp, shared
		}(i)
	}
	waitFor(t, func() bool { return m.CoalesceHits.Value() == joiners }, "all joiners parked")
	close(release)
	wg.Wait()

	if got := rpcs.Load(); got != 1 {
		t.Fatalf("%d RPCs issued, want 1", got)
	}
	if sharedFlags[0] {
		t.Fatal("leader reported shared=true")
	}
	for i := 1; i <= joiners; i++ {
		if !sharedFlags[i] {
			t.Fatalf("joiner %d reported shared=false", i)
		}
		if results[i] == nil || results[i].LSN != 42 {
			t.Fatalf("joiner %d got %+v, want the leader's LSN-42 image", i, results[i])
		}
	}
	if hits, misses := m.CoalesceHits.Value(), m.CoalesceMiss.Value(); hits != joiners || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want %d and 1", hits, misses, joiners)
	}
	if c.InFlight() != 0 {
		t.Fatal("flight leaked")
	}
}

// TestCoalesceNewerLSNDoesNotJoin: a caller needing a NEWER LSN than the
// in-flight request must issue its own RPC — the leader's result cannot
// be guaranteed fresh enough.
func TestCoalesceNewerLSNDoesNotJoin(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	c := NewCoalescer(m)

	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var rpcs atomic.Int64

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = c.Do(context.Background(), page.ID(3), 10, func() (*rbio.Response, error) {
			rpcs.Add(1)
			close(leaderIn)
			<-release
			return rbio.Ok(), nil
		})
	}()
	<-leaderIn

	// minLSN 11 > leader's 10: must not share.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, shared, err := c.Do(context.Background(), page.ID(3), 11, func() (*rbio.Response, error) {
			rpcs.Add(1)
			return rbio.Ok(), nil
		})
		if err != nil {
			t.Error(err)
		}
		if shared {
			t.Error("newer-LSN caller shared a stale in-flight fetch")
		}
	}()
	select {
	case <-done: // must complete WITHOUT the leader releasing
	case <-time.After(2 * time.Second):
		t.Fatal("newer-LSN caller blocked behind an incompatible flight")
	}
	close(release)
	wg.Wait()
	if got := rpcs.Load(); got != 2 {
		t.Fatalf("%d RPCs, want 2 (leader + incompatible caller)", got)
	}
}

// TestCoalesceDifferentPagesDoNotShare: flights are keyed by page ID.
func TestCoalesceDifferentPagesDoNotShare(t *testing.T) {
	c := NewCoalescer(nil)
	var rpcs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, shared, err := c.Do(context.Background(), page.ID(i), 5, func() (*rbio.Response, error) {
				rpcs.Add(1)
				time.Sleep(5 * time.Millisecond)
				return rbio.Ok(), nil
			})
			if err != nil || shared {
				t.Errorf("page %d: shared=%v err=%v", i, shared, err)
			}
		}(i)
	}
	wg.Wait()
	if got := rpcs.Load(); got != 4 {
		t.Fatalf("%d RPCs, want 4", got)
	}
}

// TestCoalesceErrorShared: joiners see the leader's error (deliberate —
// the client layer under the leader already retried).
func TestCoalesceErrorShared(t *testing.T) {
	c := NewCoalescer(nil)
	boom := errors.New("store unreachable")
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.Do(context.Background(), page.ID(9), 4, func() (*rbio.Response, error) {
			close(leaderIn)
			<-release
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("leader err = %v", err)
		}
	}()
	<-leaderIn
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, shared, err := c.Do(context.Background(), page.ID(9), 2, func() (*rbio.Response, error) {
			t.Error("joiner issued its own RPC")
			return rbio.Ok(), nil
		})
		if !shared || !errors.Is(err, boom) {
			t.Errorf("joiner shared=%v err=%v, want shared leader error", shared, err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if c.InFlight() != 0 {
		t.Fatal("flight leaked after error")
	}
}

// TestCoalesceJoinerCtxExpiry: a joiner whose ctx dies stops waiting
// with socerr.ErrTimeout; the leader is unaffected.
func TestCoalesceJoinerCtxExpiry(t *testing.T) {
	c := NewCoalescer(nil)
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _, err := c.Do(context.Background(), page.ID(5), 8, func() (*rbio.Response, error) {
			close(leaderIn)
			<-release
			return rbio.Ok(), nil
		})
		if err != nil || resp == nil {
			t.Errorf("leader failed: %v", err)
		}
	}()
	<-leaderIn

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := c.Do(ctx, page.ID(5), 8, func() (*rbio.Response, error) {
		t.Error("expired joiner issued an RPC")
		return rbio.Ok(), nil
	})
	if !errors.Is(err, socerr.ErrTimeout) {
		t.Fatalf("joiner err = %v, want socerr.ErrTimeout", err)
	}
	close(release)
	wg.Wait()
}

// TestCoalesceRace hammers one hot page plus a spread of cold pages
// from many goroutines with mixed LSNs and cancellations — the -race
// fault-injection test for the coalescer's map and flight lifecycle.
func TestCoalesceRace(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	c := NewCoalescer(m)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				id := page.ID(1) // hot page
				if i%3 == 0 {
					id = page.ID(uint64(g*100 + i)) // cold spread
				}
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if i%7 == 6 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%2)*time.Millisecond)
				}
				_, _, _ = c.Do(ctx, id, page.LSN(i%5), func() (*rbio.Response, error) {
					time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
					return rbio.Ok(), nil
				})
				cancel()
			}
		}(g)
	}
	wg.Wait()
	if c.InFlight() != 0 {
		t.Fatalf("%d flights leaked", c.InFlight())
	}
}
