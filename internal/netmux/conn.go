package netmux

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"socrates/internal/obs"
	"socrates/internal/rbio"
	"socrates/internal/socerr"
)

// muxResult is what a demuxed response delivers to its waiting caller.
type muxResult struct {
	resp *rbio.Response
	err  error
}

// MuxConn multiplexes many concurrent RPCs over one stream. It
// implements rbio.Conn, so rbio.Client's negotiation/retry/QoS layers
// work unchanged on top.
//
// Lifecycle of a call: assign a request ID, register a waiter, write a
// FrameMuxCall, park on the waiter channel. The demux goroutine reads
// response frames and delivers each to the waiter registered under its
// ID. Cancellation deregisters the waiter and returns immediately — the
// response, when it eventually arrives, finds no waiter and is dropped
// (counted in Metrics.LateDrops). The connection stays healthy: unlike
// the sequential transport there is nothing a late response could be
// mispaired with.
//
// The connection dies only on torn framing: a read error, an
// undecodable response, an unexpected frame kind, or a failed/partial
// write. Then every parked waiter fails with rbio.ErrUnavailable and
// future calls fail fast so the pool evicts the conn.
type MuxConn struct {
	conn net.Conn
	addr string
	m    *Metrics

	writeMu sync.Mutex // serializes frames; guards SetWriteDeadline too

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan muxResult // nil once the conn is dead
	err     error                     // first fatal error, set once
}

// NewMuxConn wraps an established stream whose peer has already proven
// (via hello) that it accepts mux framing. It takes ownership of conn
// and starts the demux goroutine. m may be nil.
func NewMuxConn(conn net.Conn, addr string, m *Metrics) *MuxConn {
	c := &MuxConn{
		conn:    conn,
		addr:    addr,
		m:       m,
		pending: make(map[uint64]chan muxResult),
	}
	go c.demux()
	return c
}

// Addr identifies the remote endpoint.
func (c *MuxConn) Addr() string { return c.addr }

// Healthy reports whether the connection can still carry calls. Pools
// use it to evict dead conns before dispatching onto them.
func (c *MuxConn) Healthy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err == nil
}

// Pending reports the number of registered waiters (tests/diagnostics).
func (c *MuxConn) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Close tears the connection down; parked callers fail with
// rbio.ErrUnavailable.
func (c *MuxConn) Close() error {
	c.fail(errors.New("netmux: connection closed"))
	return nil
}

// muxWaiterPool recycles the per-call waiter channels. The recycling
// contract: every delivery (demux, fail) happens while holding c.mu and
// only while the channel is still registered in c.pending, so once a
// caller has removed its entry — by receiving (demux deletes before
// sending) or by abandon — no further send can occur, and after a
// non-blocking drain the channel is provably empty and safe to reuse.
var muxWaiterPool = sync.Pool{
	New: func() any { return make(chan muxResult, 1) },
}

// register assigns a request ID and parks a pooled waiter under it.
func (c *MuxConn) register() (uint64, chan muxResult, error) {
	ch := muxWaiterPool.Get().(chan muxResult)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		muxWaiterPool.Put(ch)
		return 0, nil, fmt.Errorf("%w: %s: %v", rbio.ErrUnavailable, c.addr, c.err)
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = ch
	return id, ch, nil
}

// abandon removes the waiter for id, if still registered, and recycles
// its channel. The demux loop will drop the response by ID when (if) it
// arrives. Any delivery raced ahead of us under c.mu, so after the
// unlock the drain below observes it and the channel is empty for reuse.
func (c *MuxConn) abandon(id uint64, ch chan muxResult) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
	select {
	case <-ch:
	default:
	}
	muxWaiterPool.Put(ch)
}

// fail marks the connection dead (first error wins), delivers the
// failure to every parked waiter, and closes the stream. Delivery
// happens under c.mu — each channel is buffered and has exactly one
// outstanding send — which is what makes waiter-channel recycling safe
// against a racing abandon.
func (c *MuxConn) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	wrapped := fmt.Errorf("%w: %s: %v", rbio.ErrUnavailable, c.addr, err)
	for _, ch := range c.pending {
		ch <- muxResult{err: wrapped}
	}
	c.pending = nil
	c.mu.Unlock()
	_ = c.conn.Close()
}

// writeFrame emits one frame under the write mutex, bounding the write
// by the context deadline if one is set. A write error is fatal for the
// whole connection: the frame may be torn mid-stream.
func (c *MuxConn) writeFrame(ctx context.Context, kind byte, payload []byte) error {
	c.writeMu.Lock()
	if d, ok := ctx.Deadline(); ok {
		_ = c.conn.SetWriteDeadline(d)
	} else {
		_ = c.conn.SetWriteDeadline(time.Time{})
	}
	err := rbio.WriteFrame(c.conn, kind, payload)
	c.writeMu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("netmux: torn write: %w", err))
		return fmt.Errorf("%w: %s: %v", rbio.ErrUnavailable, c.addr, err)
	}
	return nil
}

// muxFramePool recycles the [id][request] staging buffers for the call
// and send paths; a buffer is reusable as soon as writeFrame returns.
var muxFramePool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// writeMuxFrame stages [8-byte LE id][encoded request] in a pooled
// buffer and emits it as one frame.
//
//socrates:hotpath runs once per RPC issued on the fabric
func (c *MuxConn) writeMuxFrame(ctx context.Context, kind byte, id uint64, req *rbio.Request) error {
	bp := muxFramePool.Get().(*[]byte)
	//socrates:alloc-ok pooled staging buffer; growth amortizes across the pool
	buf := binary.LittleEndian.AppendUint64((*bp)[:0], id)
	buf = rbio.AppendRequest(buf, req)
	err := c.writeFrame(ctx, kind, buf)
	*bp = buf[:0]
	muxFramePool.Put(bp)
	return err
}

// Call issues req and waits for the response paired to its request ID.
// A cancelled or expired context abandons the slot without harming the
// connection.
//
//socrates:hotpath every GetPage/commit RPC rides this; budget enforced by TestMuxCallAllocs
func (c *MuxConn) Call(ctx context.Context, req *rbio.Request) (*rbio.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, socerr.FromContext(err)
	}
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	if err := c.writeMuxFrame(ctx, rbio.FrameMuxCall, id, req); err != nil {
		c.abandon(id, ch)
		return nil, err
	}
	// netmux.rtt: the frame is on the wire; everything until the demux
	// goroutine delivers the paired response is network round-trip.
	region := c.m.waits().Begin(ctx, obs.WaitMuxRTT)
	select {
	case res := <-ch:
		region.End()
		muxWaiterPool.Put(ch)
		return res.resp, res.err
	case <-ctx.Done():
		region.End()
		c.abandon(id, ch)
		return nil, socerr.FromContext(ctx.Err())
	}
}

// Send delivers req fire-and-forget over the mux stream.
//
//socrates:hotpath the lossy log feed issues one of these per block
func (c *MuxConn) Send(ctx context.Context, req *rbio.Request) error {
	//socrates:wait-ok ID-allocation latch held for two increments; the blocking part of a send is charged as netmux.queue at the frame writer
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		//socrates:alloc-ok dead-connection error path, not the steady-state send
		return fmt.Errorf("%w: %s: %v", rbio.ErrUnavailable, c.addr, err)
	}
	id := c.nextID
	c.nextID++
	c.mu.Unlock()
	return c.writeMuxFrame(ctx, rbio.FrameMuxOneway, id, req)
}

// demux reads response frames and pairs them to waiters by request ID.
func (c *MuxConn) demux() {
	for {
		kind, frame, err := rbio.ReadFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("netmux: read: %w", err))
			return
		}
		if kind != rbio.FrameMuxResp || len(frame) < 8 {
			c.fail(fmt.Errorf("netmux: torn frame (kind %d, %d bytes)", kind, len(frame)))
			return
		}
		id := binary.LittleEndian.Uint64(frame[:8])
		resp, err := rbio.DecodeResponse(frame[8:])
		if err != nil {
			c.fail(fmt.Errorf("netmux: torn response: %w", err))
			return
		}
		// Deliver under the lock: recycling waiter channels is only safe
		// because a send can never race an abandon (both serialize on
		// c.mu, and the entry is removed in the same critical section as
		// the send). The channel is buffered with exactly one outstanding
		// send, so holding the lock across it never blocks.
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
			//socrates:lock-ok buffered channel with exactly one outstanding send never blocks; sending under c.mu is what makes waiter-channel recycling race-free against abandon
			ch <- muxResult{resp: resp}
		}
		c.mu.Unlock()
		if !ok {
			// Late response for an abandoned call: dropped by ID; the
			// connection is unharmed.
			if c.m != nil {
				c.m.LateDrops.Inc()
			}
		}
	}
}

// DialTimeout bounds the TCP connect and hello exchange in DialTCP.
const DialTimeout = 5 * time.Second

// DialTCP connects to an RBIO endpoint and upgrades to mux framing when
// the peer supports it. The hello is a fixed v1-layout MsgPing in
// sequential framing — a frame every protocol version decodes — and the
// response header, layout-stable across versions, advertises the peer's
// build. Peers ≥ rbio.VersionMux get a MuxConn; older peers keep the
// same socket with sequential framing, so downgrade costs one round
// trip and zero reconnects. m may be nil.
func DialTCP(addr string, m *Metrics) (rbio.Conn, error) {
	raw, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", rbio.ErrUnavailable, err)
	}
	_ = raw.SetDeadline(time.Now().Add(DialTimeout))
	hello := &rbio.Request{Version: rbio.VersionMin, Type: rbio.MsgPing}
	if err := rbio.WriteFrame(raw, rbio.FrameCall, rbio.EncodeRequest(hello)); err != nil {
		_ = raw.Close()
		return nil, fmt.Errorf("%w: hello: %v", rbio.ErrUnavailable, err)
	}
	_, frame, err := rbio.ReadFrame(raw)
	if err != nil {
		_ = raw.Close()
		return nil, fmt.Errorf("%w: hello: %v", rbio.ErrUnavailable, err)
	}
	resp, err := rbio.DecodeResponse(frame)
	if err != nil {
		_ = raw.Close()
		return nil, fmt.Errorf("%w: hello: %v", rbio.ErrUnavailable, err)
	}
	_ = raw.SetDeadline(time.Time{})
	if resp.Version >= rbio.VersionMux {
		return NewMuxConn(raw, addr, m), nil
	}
	return rbio.NewSequentialConn(raw, addr), nil
}
