package netmux

import (
	"context"
	"testing"

	"socrates/internal/rbio"
	"socrates/internal/testutil"
)

// TestMuxCallAllocs is the allocation contract for the mux RPC path: the
// budget covers one full in-process round trip — client staging + frame
// write, server read/decode/encode, client demux + decode — so it pins
// both sides of the fabric at once. The pooled staging buffers, pooled
// waiter channels, and append-style codecs are what keep it this low;
// regressions (a per-call make, a dropped pool) blow the budget.
func TestMuxCallAllocs(t *testing.T) {
	testutil.SkipIfRace(t)

	ok := rbio.Ok()
	addr := startMuxServer(t, func(_ context.Context, _ *rbio.Request) *rbio.Response {
		return ok
	})
	c := dialMux(t, addr)

	ctx := context.Background()
	req := &rbio.Request{Type: rbio.MsgPing}
	// Warm the pools and the connection before measuring.
	for i := 0; i < 64; i++ {
		if _, err := c.Call(ctx, req); err != nil {
			t.Fatal(err)
		}
	}

	avg := testing.AllocsPerRun(200, func() {
		if _, err := c.Call(ctx, req); err != nil {
			t.Fatal(err)
		}
	})
	// The irreducible steady-state costs: the read-side frame buffers and
	// decoded request/response values on both peers.
	const budget = 16
	t.Logf("mux Call: %.1f allocs/op (budget %d)", avg, budget)
	if avg > budget {
		t.Fatalf("mux Call: %.1f allocs/op, budget %d", avg, budget)
	}
}
