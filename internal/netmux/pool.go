package netmux

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"socrates/internal/obs"
	"socrates/internal/rbio"
	"socrates/internal/socerr"
)

// Dialer opens one connection to addr. Pools use it for lazy dialing
// and for replacing evicted connections; it decides the transport
// (DialTCP for real wires, Network.Dial for the in-process fabric).
type Dialer func(addr string) (rbio.Conn, error)

// Options configures a Pool. Zero values take the defaults below.
type Options struct {
	// Conns is the number of connections kept to the destination.
	Conns int
	// MaxInflight caps concurrently outstanding calls to the
	// destination across all connections.
	MaxInflight int
	// MaxQueue bounds how many callers may wait for an in-flight slot;
	// callers beyond it fail fast with socerr.ErrBackpressure.
	MaxQueue int
	// Metrics receives the pool's instrumentation (nil = disabled).
	Metrics *Metrics
	// Flight receives pool eviction/backpressure events (nil = disabled).
	Flight *obs.FlightRecorder
}

// Defaults for Options zero values.
const (
	DefaultConns       = 4
	DefaultMaxInflight = 64
	DefaultMaxQueue    = 256
)

func (o Options) withDefaults() Options {
	if o.Conns <= 0 {
		o.Conns = DefaultConns
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = DefaultMaxInflight
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = DefaultMaxQueue
	}
	return o
}

// slot is one connection position in a pool. The conn is dialed lazily
// and replaced lazily after eviction.
type slot struct {
	mu   sync.Mutex
	conn rbio.Conn
}

// Pool is a fixed-width connection pool to one destination with
// round-robin dispatch, health-based eviction, a per-destination
// in-flight cap, and a bounded wait queue. It implements rbio.Conn, so
// an rbio.Client (retry, negotiation, QoS) layers directly on top.
type Pool struct {
	addr string
	dial Dialer
	opt  Options

	sem     chan struct{} // in-flight slots
	waiters atomic.Int64  // callers currently queued for a slot

	mu     sync.Mutex
	slots  []*slot
	next   int
	closed bool
}

// NewPool builds a pool to addr over dial.
func NewPool(addr string, dial Dialer, opt Options) *Pool {
	opt = opt.withDefaults()
	p := &Pool{
		addr:  addr,
		dial:  dial,
		opt:   opt,
		sem:   make(chan struct{}, opt.MaxInflight),
		slots: make([]*slot, opt.Conns),
	}
	for i := range p.slots {
		p.slots[i] = &slot{}
	}
	return p
}

// Addr identifies the pool's destination.
func (p *Pool) Addr() string { return p.addr }

// Close evicts every connection and fails future calls with
// socerr.ErrClosed.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	slots := p.slots
	p.mu.Unlock()
	for _, s := range slots {
		s.mu.Lock()
		c := s.conn
		s.conn = nil
		s.mu.Unlock()
		if c != nil {
			//socrates:ignore-err pool teardown; conns hold no durable state and waiters are failed by the conns themselves
			_ = c.Close()
		}
	}
	return nil
}

// SeverAll closes every pooled connection mid-flight (chaos injection:
// a network partition that tears established streams). In-flight calls
// fail with rbio.ErrUnavailable and the client layer retries onto
// freshly dialed connections. It reports how many conns were severed.
func (p *Pool) SeverAll() int {
	p.mu.Lock()
	slots := p.slots
	p.mu.Unlock()
	n := 0
	for _, s := range slots {
		s.mu.Lock()
		c := s.conn
		s.conn = nil
		s.mu.Unlock()
		if c != nil {
			//socrates:ignore-err chaos severing tears the socket on purpose; in-flight calls surface ErrUnavailable
			_ = c.Close()
			n++
		}
	}
	if n > 0 {
		if m := p.opt.Metrics; m != nil {
			m.Evictions.Add(uint64(n))
		}
		if f := p.opt.Flight; f != nil {
			f.Record("netmux", "pool.sever", 0, 0,
				fmt.Sprintf("%s: %d conns severed", p.addr, n))
		}
	}
	return n
}

// ConnCount reports how many connections are currently open
// (tests/diagnostics).
func (p *Pool) ConnCount() int {
	p.mu.Lock()
	slots := p.slots
	p.mu.Unlock()
	n := 0
	for _, s := range slots {
		s.mu.Lock()
		if s.conn != nil {
			n++
		}
		s.mu.Unlock()
	}
	return n
}

// acquire takes an in-flight slot, waiting in the bounded queue when
// the cap is hit and failing fast with socerr.ErrBackpressure when the
// queue is full too.
func (p *Pool) acquire(ctx context.Context) error {
	m := p.opt.Metrics
	select {
	case p.sem <- struct{}{}:
		if m != nil {
			m.Inflight.Add(1)
		}
		return nil
	default:
	}
	if w := p.waiters.Add(1); int(w) > p.opt.MaxQueue {
		p.waiters.Add(-1)
		if m != nil {
			m.Backpressure.Inc()
		}
		if f := p.opt.Flight; f != nil {
			f.Record("netmux", "backpressure", 0, 0,
				fmt.Sprintf("%s: %d in flight, %d queued", p.addr, p.opt.MaxInflight, p.opt.MaxQueue))
		}
		return fmt.Errorf("%w: %s: %d in flight and %d queued",
			socerr.ErrBackpressure, p.addr, p.opt.MaxInflight, p.opt.MaxQueue)
	}
	if m != nil {
		m.QueueDepth.Add(1)
	}
	start := time.Now()
	defer func() {
		p.waiters.Add(-1)
		if m != nil {
			m.QueueDepth.Add(-1)
			m.QueueWait.Since(start)
		}
		// netmux.queue: admission wait behind the in-flight cap (recorded
		// whether the slot arrived or ctx expired — blocked time either way).
		m.waits().Observe(ctx, obs.WaitMuxQueue, time.Since(start))
	}()
	select {
	case p.sem <- struct{}{}:
		if m != nil {
			m.Inflight.Add(1)
		}
		return nil
	case <-ctx.Done():
		return socerr.FromContext(ctx.Err())
	}
}

func (p *Pool) release() {
	<-p.sem
	if m := p.opt.Metrics; m != nil {
		m.Inflight.Add(-1)
	}
}

// healthChecker is implemented by conns that can report liveness
// without a round trip (MuxConn).
type healthChecker interface{ Healthy() bool }

// get picks the next connection round-robin, dialing lazily and
// replacing conns that report themselves dead.
func (p *Pool) get() (*slot, rbio.Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: netmux pool %s", socerr.ErrClosed, p.addr)
	}
	s := p.slots[p.next%len(p.slots)]
	p.next++
	p.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	if hc, ok := s.conn.(healthChecker); ok && !hc.Healthy() {
		//socrates:ignore-err evicting an already-dead conn; its demux loop has failed all waiters
		_ = s.conn.Close()
		s.conn = nil
		if m := p.opt.Metrics; m != nil {
			m.Evictions.Inc()
		}
		if f := p.opt.Flight; f != nil {
			f.Record("netmux", "pool.evict", 0, 0, p.addr+": unhealthy conn replaced")
		}
	}
	if s.conn == nil {
		c, err := p.dial(p.addr)
		if err != nil {
			return nil, nil, err
		}
		if m := p.opt.Metrics; m != nil {
			m.Dials.Inc()
		}
		s.conn = c
	}
	return s, s.conn, nil
}

// evict drops conn from its slot after a transport failure so the next
// use redials. A slot that already moved on is left alone.
func (p *Pool) evict(s *slot, conn rbio.Conn) {
	s.mu.Lock()
	if s.conn != conn {
		s.mu.Unlock()
		return
	}
	s.conn = nil
	s.mu.Unlock()
	//socrates:ignore-err evicting after a transport failure; the close is best-effort hygiene
	_ = conn.Close()
	if m := p.opt.Metrics; m != nil {
		m.Evictions.Inc()
	}
	if f := p.opt.Flight; f != nil {
		f.Record("netmux", "pool.evict", 0, 0, p.addr+": conn failed, evicted")
	}
}

// Call dispatches req onto a pooled connection, respecting the
// in-flight cap and the bounded queue. Transport failures evict the
// connection; the error still propagates so the rbio.Client layer
// decides about retries.
func (p *Pool) Call(ctx context.Context, req *rbio.Request) (*rbio.Response, error) {
	if err := p.acquire(ctx); err != nil {
		return nil, err
	}
	defer p.release()
	s, conn, err := p.get()
	if err != nil {
		return nil, err
	}
	resp, err := conn.Call(ctx, req)
	if err != nil && errors.Is(err, rbio.ErrUnavailable) {
		p.evict(s, conn)
	}
	return resp, err
}

// Send dispatches a fire-and-forget request through the pool. It
// honors the in-flight cap like Call: the feed path is lossy by
// contract, so a backpressure rejection is equivalent to a dropped
// datagram and the XLOG pending area compensates.
func (p *Pool) Send(ctx context.Context, req *rbio.Request) error {
	if err := p.acquire(ctx); err != nil {
		return err
	}
	defer p.release()
	s, conn, err := p.get()
	if err != nil {
		return err
	}
	err = conn.Send(ctx, req)
	if err != nil && errors.Is(err, rbio.ErrUnavailable) {
		p.evict(s, conn)
	}
	return err
}
