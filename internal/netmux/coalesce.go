package netmux

import (
	"context"
	"sync"

	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/socerr"
)

// flight is one in-progress fetch that joiners may share.
type flight struct {
	lsn  page.LSN // the leader's requested minimum LSN
	done chan struct{}
	resp *rbio.Response
	err  error
}

// Coalescer is a GetPage@LSN singleflight: concurrent cache misses for
// the same page share one wire RPC when their LSN requirements are
// compatible. GetPage@LSN returns the newest image with appliedLSN ≥
// the requested minimum, so a joiner may share an in-flight fetch iff
// its minimum LSN is ≤ the leader's — the leader's result is then
// guaranteed fresh enough for the joiner too. A joiner that needs a
// newer LSN than the in-flight request issues its own RPC (unshared,
// and deliberately unregistered: one page maps to at most one flight).
type Coalescer struct {
	m  *Metrics
	mu sync.Mutex
	in map[page.ID]*flight
}

// NewCoalescer builds a coalescer. m may be nil.
func NewCoalescer(m *Metrics) *Coalescer {
	return &Coalescer{m: m, in: make(map[page.ID]*flight)}
}

// Do fetches page id at minimum LSN minLSN via fn, sharing an
// in-flight compatible fetch when one exists. shared reports whether
// the result came from another caller's RPC. A joiner whose ctx expires
// stops waiting without affecting the leader.
//
// Error sharing is deliberate: if the leader's fetch fails, joiners see
// the same error (the leader already retried at the client layer);
// callers that want independence retry their own miss, which will start
// a fresh flight.
func (c *Coalescer) Do(ctx context.Context, id page.ID, minLSN page.LSN,
	fn func() (*rbio.Response, error)) (resp *rbio.Response, shared bool, err error) {
	c.mu.Lock()
	//socrates:lsn-ok join-compatibility check: a joiner shares a flight iff its minimum LSN is at or below the leader's requested minimum (GetPage@LSN returns >= the request)
	if f, ok := c.in[id]; ok && minLSN <= f.lsn {
		c.mu.Unlock()
		if c.m != nil {
			c.m.CoalesceHits.Inc()
		}
		select {
		case <-f.done:
			return f.resp, true, f.err
		case <-ctx.Done():
			return nil, true, socerr.FromContext(ctx.Err())
		}
	}
	var f *flight
	if _, ok := c.in[id]; !ok {
		f = &flight{lsn: minLSN, done: make(chan struct{})}
		c.in[id] = f
	}
	c.mu.Unlock()
	if c.m != nil {
		c.m.CoalesceMiss.Inc()
	}
	resp, err = fn()
	if f != nil {
		f.resp, f.err = resp, err
		c.mu.Lock()
		if c.in[id] == f {
			delete(c.in, id)
		}
		c.mu.Unlock()
		close(f.done)
	}
	return resp, false, err
}

// InFlight reports the number of pages with an active flight
// (tests/diagnostics).
func (c *Coalescer) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.in)
}
