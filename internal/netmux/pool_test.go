package netmux

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/socerr"
)

// tcpDialer is the production Dialer over DialTCP with shared metrics.
func tcpDialer(m *Metrics) Dialer {
	return func(addr string) (rbio.Conn, error) { return DialTCP(addr, m) }
}

// TestPoolBackpressureFailFast: once MaxInflight slots are taken and
// MaxQueue callers wait, the next caller must fail IMMEDIATELY with
// socerr.ErrBackpressure — not queue unboundedly, not hang.
func TestPoolBackpressureFailFast(t *testing.T) {
	release := make(chan struct{})
	addr := startMuxServer(t, func(_ context.Context, req *rbio.Request) *rbio.Response {
		if req.Version != rbio.VersionMin { // let the dial hello through
			<-release
		}
		return rbio.Ok()
	})

	m := NewMetrics(obs.NewRegistry())
	p := NewPool(addr, tcpDialer(m), Options{Conns: 1, MaxInflight: 2, MaxQueue: 1, Metrics: m})
	defer p.Close()

	// Fill both in-flight slots.
	started := make(chan struct{}, 3)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			_, _ = p.Call(context.Background(), &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing})
		}()
	}
	<-started
	<-started
	waitFor(t, func() bool { return m.Inflight.Value() == 2 }, "2 calls in flight")

	// Fill the single queue slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = p.Call(context.Background(), &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing})
	}()
	waitFor(t, func() bool { return p.waiters.Load() == 1 }, "1 caller queued")

	// The next caller must be rejected fast.
	start := time.Now()
	_, err := p.Call(context.Background(), &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing})
	if !errors.Is(err, socerr.ErrBackpressure) {
		t.Fatalf("err = %v, want socerr.ErrBackpressure", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("backpressure rejection took %v, want fail-fast", d)
	}
	// Backpressure must NOT look like unavailability — the client layer
	// would retry it and amplify the overload.
	if errors.Is(err, rbio.ErrUnavailable) {
		t.Fatal("ErrBackpressure matches rbio.ErrUnavailable; client would retry into the overload")
	}
	if m.Backpressure.Value() == 0 {
		t.Fatal("backpressure trip not counted")
	}
	close(release) // let the parked calls finish
	wg.Wait()
}

// TestPoolQueuedCallerHonorsContext: a caller parked in the wait queue
// must abandon its spot when its ctx expires.
func TestPoolQueuedCallerHonorsContext(t *testing.T) {
	release := make(chan struct{})
	addr := startMuxServer(t, func(_ context.Context, req *rbio.Request) *rbio.Response {
		if req.Version != rbio.VersionMin { // let the dial hello through
			<-release
		}
		return rbio.Ok()
	})

	p := NewPool(addr, tcpDialer(nil), Options{Conns: 1, MaxInflight: 1, MaxQueue: 4})
	defer p.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = p.Call(context.Background(), &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing})
	}()
	waitFor(t, func() bool { return p.ConnCount() == 1 }, "first call dialed")

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	_, err := p.Call(ctx, &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing})
	if !errors.Is(err, socerr.ErrTimeout) {
		t.Fatalf("err = %v, want socerr.ErrTimeout", err)
	}
	waitFor(t, func() bool { return p.waiters.Load() == 0 }, "queue drained after ctx expiry")
	close(release) // let the parked call finish
	wg.Wait()
}

// TestPoolEvictsAndRedialsAfterSever: SeverAll (the chaos partition)
// kills every pooled conn; the next calls must lazily redial and
// succeed, and the dial/eviction counters must show it.
func TestPoolEvictsAndRedialsAfterSever(t *testing.T) {
	addr := startMuxServer(t, func(_ context.Context, req *rbio.Request) *rbio.Response {
		resp := rbio.Ok()
		resp.LSN = req.LSN
		return resp
	})
	m := NewMetrics(obs.NewRegistry())
	p := NewPool(addr, tcpDialer(m), Options{Conns: 2, MaxInflight: 8, MaxQueue: 8, Metrics: m})
	defer p.Close()

	for i := 0; i < 4; i++ {
		if _, err := p.Call(context.Background(), &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing, LSN: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.ConnCount(); got != 2 {
		t.Fatalf("ConnCount = %d, want 2", got)
	}
	dialsBefore := m.Dials.Value()

	if n := p.SeverAll(); n != 2 {
		t.Fatalf("SeverAll severed %d conns, want 2", n)
	}
	if got := p.ConnCount(); got != 0 {
		t.Fatalf("ConnCount after sever = %d, want 0", got)
	}

	// Calls after the partition heal by redialing.
	for i := 0; i < 4; i++ {
		if _, err := p.Call(context.Background(), &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing, LSN: 2}); err != nil {
			t.Fatalf("call %d after sever: %v", i, err)
		}
	}
	if m.Dials.Value() <= dialsBefore {
		t.Fatal("no redial after sever")
	}
	if m.Evictions.Value() == 0 {
		t.Fatal("sever not counted as evictions")
	}
}

// TestPoolEvictsUnhealthyConn: a conn whose stream died (torn frame)
// reports !Healthy(); the pool must replace it on the next round-robin
// visit rather than hand it to a caller.
func TestPoolEvictsUnhealthyConn(t *testing.T) {
	addr := startMuxServer(t, func(_ context.Context, _ *rbio.Request) *rbio.Response {
		return rbio.Ok()
	})
	m := NewMetrics(obs.NewRegistry())
	p := NewPool(addr, tcpDialer(m), Options{Conns: 1, MaxInflight: 4, MaxQueue: 4, Metrics: m})
	defer p.Close()

	if _, err := p.Call(context.Background(), &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing}); err != nil {
		t.Fatal(err)
	}
	// Tear the underlying socket out from under the pooled MuxConn.
	p.mu.Lock()
	mc := p.slots[0].conn.(*MuxConn)
	p.mu.Unlock()
	_ = mc.conn.Close()
	waitFor(t, func() bool { return !mc.Healthy() }, "conn noticed its stream died")

	if _, err := p.Call(context.Background(), &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing}); err != nil {
		t.Fatalf("call after unhealthy eviction: %v", err)
	}
	if m.Evictions.Value() == 0 {
		t.Fatal("unhealthy conn was not evicted")
	}
	p.mu.Lock()
	cur := p.slots[0].conn
	p.mu.Unlock()
	if cur == rbio.Conn(mc) {
		t.Fatal("pool still holds the dead conn")
	}
}

// TestPoolClosedFailsFast: calls after Close fail with socerr.ErrClosed.
func TestPoolClosedFailsFast(t *testing.T) {
	addr := startMuxServer(t, func(_ context.Context, _ *rbio.Request) *rbio.Response {
		return rbio.Ok()
	})
	p := NewPool(addr, tcpDialer(nil), Options{})
	if _, err := p.Call(context.Background(), &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing}); err != nil {
		t.Fatal(err)
	}
	_ = p.Close()
	if _, err := p.Call(context.Background(), &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing}); !errors.Is(err, socerr.ErrClosed) {
		t.Fatalf("err = %v, want socerr.ErrClosed", err)
	}
}

// TestPoolChaosCallsVsSeverVsCancel is the pool-level fault-injection
// test: hammer the pool while a chaos goroutine severs all conns and a
// fraction of callers carry aggressive deadlines. Run under -race this
// exercises demux vs cancellation vs eviction concurrently. Calls may
// fail with ErrUnavailable (severed mid-flight) — what must NOT happen
// is a wrong pairing, a hang, or a race.
func TestPoolChaosCallsVsSeverVsCancel(t *testing.T) {
	addr := startMuxServer(t, func(_ context.Context, req *rbio.Request) *rbio.Response {
		resp := rbio.Ok()
		resp.LSN = req.LSN + 1
		return resp
	})
	m := NewMetrics(obs.NewRegistry())
	p := NewPool(addr, tcpDialer(m), Options{Conns: 3, MaxInflight: 32, MaxQueue: 64, Metrics: m})
	defer p.Close()

	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				p.SeverAll()
			}
		}
	}()

	var wrongPairings atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				lsn := uint64(g*1000 + i + 1)
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if i%4 == 3 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%3)*time.Millisecond)
				}
				resp, err := p.Call(ctx, &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing, LSN: page.LSN(lsn)})
				cancel()
				if err != nil {
					continue // sever/cancel losses are expected; pairing errors are not
				}
				if uint64(resp.LSN) != lsn+1 {
					wrongPairings.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	chaosWG.Wait()
	if n := wrongPairings.Load(); n != 0 {
		t.Fatalf("%d cross-paired responses under chaos", n)
	}
	// After the chaos stops the pool must still serve.
	if _, err := p.Call(context.Background(), &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing, LSN: 1}); err != nil {
		t.Fatalf("pool dead after chaos: %v", err)
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
