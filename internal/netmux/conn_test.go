package netmux

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/rbio"
	"socrates/internal/socerr"
)

// startSequentialV2Server runs a raw TCP server that speaks ONLY the
// sequential v2 framing — one request, one response, in order, never
// mux. It models a pre-mux peer for downgrade interop tests.
func startSequentialV2Server(t *testing.T, h rbio.Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					kind, frame, err := rbio.ReadFrame(conn)
					if err != nil {
						return
					}
					if kind != rbio.FrameCall && kind != rbio.FrameOneway {
						// A v2 peer has never heard of mux frames:
						// torn stream, hang up.
						return
					}
					req, err := rbio.DecodeRequest(frame)
					if err != nil {
						return
					}
					if kind == rbio.FrameOneway {
						h(context.Background(), req)
						continue
					}
					resp := h(context.Background(), req)
					if resp == nil {
						resp = rbio.Ok()
					}
					resp.Version = 2 // advertise v2: mux-incapable
					if err := rbio.WriteFrame(conn, rbio.FrameCall, rbio.EncodeResponse(resp)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// startMuxServer runs a current-build RBIO TCP server (speaks mux) with
// the given handler and returns its address.
func startMuxServer(t *testing.T, h rbio.Handler) string {
	t.Helper()
	srv, err := rbio.ServeTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv.Addr()
}

func dialMux(t *testing.T, addr string) *MuxConn {
	t.Helper()
	conn, err := DialTCP(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	mc, ok := conn.(*MuxConn)
	if !ok {
		t.Fatalf("DialTCP returned %T, want *MuxConn (server should speak v%d)", conn, rbio.Version)
	}
	t.Cleanup(func() { _ = mc.Close() })
	return mc
}

// TestMuxOutOfOrderResponses proves the demux pairs responses to callers
// by request ID, not arrival order: a slow early request must not block
// (or steal the response of) a fast later one.
func TestMuxOutOfOrderResponses(t *testing.T) {
	addr := startMuxServer(t, func(_ context.Context, req *rbio.Request) *rbio.Response {
		if req.LSN == 1 { // the slow request
			time.Sleep(100 * time.Millisecond)
		}
		resp := rbio.Ok()
		resp.LSN = req.LSN + 100
		return resp
	})
	mc := dialMux(t, addr)

	var slowDone, fastDone time.Time
	var wg sync.WaitGroup
	wg.Add(2)
	var slowErr, fastErr error
	go func() {
		defer wg.Done()
		resp, err := mc.Call(context.Background(), &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing, LSN: 1})
		slowDone = time.Now()
		if err != nil {
			slowErr = err
		} else if resp.LSN != 101 {
			slowErr = fmt.Errorf("slow got LSN %d, want 101", resp.LSN)
		}
	}()
	time.Sleep(10 * time.Millisecond) // ensure the slow call is in flight first
	go func() {
		defer wg.Done()
		resp, err := mc.Call(context.Background(), &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing, LSN: 2})
		fastDone = time.Now()
		if err != nil {
			fastErr = err
		} else if resp.LSN != 102 {
			fastErr = fmt.Errorf("fast got LSN %d, want 102", resp.LSN)
		}
	}()
	wg.Wait()
	if slowErr != nil || fastErr != nil {
		t.Fatalf("slowErr=%v fastErr=%v", slowErr, fastErr)
	}
	if !fastDone.Before(slowDone) {
		t.Fatalf("fast call finished at %v, after slow at %v: head-of-line blocking", fastDone, slowDone)
	}
}

// TestMuxTimeoutDoesNotPoisonConn is the regression test for the retired
// self-poisoning workaround: on the sequential transport a timed-out
// call poisoned the connection and forced a redial; on mux the late
// response is dropped by request ID and the SAME connection keeps
// working.
func TestMuxTimeoutDoesNotPoisonConn(t *testing.T) {
	var slow atomic.Bool
	slow.Store(true)
	addr := startMuxServer(t, func(_ context.Context, req *rbio.Request) *rbio.Response {
		if slow.Load() && req.LSN == 7 {
			time.Sleep(80 * time.Millisecond) // outlives the caller's deadline
		}
		resp := rbio.Ok()
		resp.LSN = req.LSN
		return resp
	})
	m := NewMetrics(obs.NewRegistry())
	conn, err := DialTCP(addr, m)
	if err != nil {
		t.Fatal(err)
	}
	mc := conn.(*MuxConn)
	defer mc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := mc.Call(ctx, &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing, LSN: 7}); !errors.Is(err, socerr.ErrTimeout) {
		t.Fatalf("err = %v, want socerr.ErrTimeout", err)
	}
	if !mc.Healthy() {
		t.Fatal("connection reported unhealthy after a mere timeout")
	}
	// The same connection — no redial — must serve the next call.
	resp, err := mc.Call(context.Background(), &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing, LSN: 8})
	if err != nil {
		t.Fatalf("call on the same conn after timeout failed: %v", err)
	}
	if resp.LSN != 8 {
		t.Fatalf("resp.LSN = %d, want 8 (a late response paired with the wrong call?)", resp.LSN)
	}
	// Eventually the abandoned response arrives and is dropped by ID.
	deadline := time.Now().Add(2 * time.Second)
	for m.LateDrops.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.LateDrops.Value() == 0 {
		t.Fatal("late response was never dropped by request ID")
	}
	if mc.Pending() != 0 {
		t.Fatalf("%d waiters leaked", mc.Pending())
	}
}

// TestMuxTornFrameKillsConn: unlike a timeout, genuinely torn framing
// must still poison the connection — waiters fail, later calls fail
// fast so pools evict.
func TestMuxTornFrameKillsConn(t *testing.T) {
	addr := startMuxServer(t, func(_ context.Context, _ *rbio.Request) *rbio.Response {
		return rbio.Ok()
	})
	mc := dialMux(t, addr)
	// Sabotage from the client side: close the underlying socket so the
	// demux loop sees a read error mid-stream.
	_ = mc.conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for mc.Healthy() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if mc.Healthy() {
		t.Fatal("connection still healthy after its stream died")
	}
	if _, err := mc.Call(context.Background(), &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing}); !errors.Is(err, rbio.ErrUnavailable) {
		t.Fatalf("err = %v, want rbio.ErrUnavailable", err)
	}
}

// TestMuxConcurrentCallsShareOneConn hammers one connection from many
// goroutines with interleaved cancellations — run under -race this is
// the demux-vs-cancellation fault-injection test.
func TestMuxConcurrentCallsShareOneConn(t *testing.T) {
	addr := startMuxServer(t, func(_ context.Context, req *rbio.Request) *rbio.Response {
		if req.LSN%7 == 0 {
			time.Sleep(time.Duration(req.LSN%5) * time.Millisecond)
		}
		resp := rbio.Ok()
		resp.LSN = req.LSN * 2
		return resp
	})
	mc := dialMux(t, addr)
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				lsn := uint64(g*100 + i + 1)
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if i%5 == 4 {
					// Interleave aggressive cancellations.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%3)*time.Millisecond)
				}
				resp, err := mc.Call(ctx, &rbio.Request{Version: rbio.Version, Type: rbio.MsgPing, LSN: page.LSN(lsn)})
				cancel()
				if err != nil {
					if errors.Is(err, socerr.ErrTimeout) || errors.Is(err, context.Canceled) {
						continue // expected for the cancelled fraction
					}
					errs <- err
					return
				}
				if uint64(resp.LSN) != lsn*2 {
					errs <- fmt.Errorf("cross-paired response: sent %d got %d", lsn, resp.LSN)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !mc.Healthy() {
		t.Fatal("connection died under concurrent load")
	}
}

// TestDialDowngradesToSequential: a pre-mux peer (a genuine sequential
// TCP server) must get a sequential conn on the SAME socket — wire
// compatibility costs a hello, not a reconnect.
func TestDialDowngradesToSequential(t *testing.T) {
	addr := startSequentialV2Server(t, func(_ context.Context, req *rbio.Request) *rbio.Response {
		resp := &rbio.Response{Version: 2, Status: rbio.StatusOK, LSN: req.LSN + 1}
		return resp
	})
	conn, err := DialTCP(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, ok := conn.(*MuxConn); ok {
		t.Fatal("DialTCP returned a MuxConn for a v2 peer")
	}
	resp, err := conn.Call(context.Background(), &rbio.Request{Version: 2, Type: rbio.MsgPing, LSN: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.LSN != 6 {
		t.Fatalf("resp.LSN = %d, want 6", resp.LSN)
	}
}
