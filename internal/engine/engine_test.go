package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"socrates/internal/btree"
	"socrates/internal/fcb"
	"socrates/internal/page"
	"socrates/internal/txn"
	"socrates/internal/wal"
)

func newTestEngine(t *testing.T) (*Engine, *fcb.MemFile, MemPipeline) {
	t.Helper()
	pages := fcb.NewMemFile()
	pipe := NewMemPipeline()
	e, err := Create(Config{Pages: pages, Log: pipe})
	if err != nil {
		t.Fatal(err)
	}
	return e, pages, pipe
}

func TestCreateTableAndCRUD(t *testing.T) {
	e, _, _ := newTestEngine(t)
	if err := e.CreateTable("users"); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := tx.Put("users", []byte("alice"), []byte("engineer")); err != nil {
		t.Fatal(err)
	}
	// Own write visible before commit.
	v, found, err := tx.Get("users", []byte("alice"))
	if err != nil || !found || string(v) != "engineer" {
		t.Fatalf("own write: %q %v %v", v, found, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := e.BeginRO()
	v, found, err = tx2.Get("users", []byte("alice"))
	if err != nil || !found || string(v) != "engineer" {
		t.Fatalf("after commit: %q %v %v", v, found, err)
	}
	tx2.Abort()
}

func TestTableErrors(t *testing.T) {
	e, _, _ := newTestEngine(t)
	_ = e.CreateTable("t")
	if err := e.CreateTable("t"); !errors.Is(err, ErrTableExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := e.CreateTable(""); err == nil {
		t.Fatal("empty name accepted")
	}
	tx := e.Begin()
	defer tx.Abort()
	if _, _, err := tx.Get("ghost", []byte("k")); !errors.Is(err, ErrNoTable) {
		t.Fatalf("missing table: %v", err)
	}
	if err := tx.Put("ghost", []byte("k"), nil); !errors.Is(err, ErrNoTable) {
		t.Fatalf("put to missing table: %v", err)
	}
}

func TestTablesListing(t *testing.T) {
	e, _, _ := newTestEngine(t)
	_ = e.CreateTable("b")
	_ = e.CreateTable("a")
	names, err := e.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("tables = %v", names)
	}
	if !e.HasTable("a") || e.HasTable("zz") {
		t.Fatal("HasTable wrong")
	}
}

func TestSnapshotIsolationReaders(t *testing.T) {
	e, _, _ := newTestEngine(t)
	_ = e.CreateTable("t")
	w1 := e.Begin()
	_ = w1.Put("t", []byte("k"), []byte("v1"))
	if err := w1.Commit(); err != nil {
		t.Fatal(err)
	}

	// Reader's snapshot is pinned before the second write commits.
	reader := e.BeginRO()
	w2 := e.Begin()
	_ = w2.Put("t", []byte("k"), []byte("v2"))
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}

	v, _, err := reader.Get("t", []byte("k"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("snapshot read = %q %v, want v1", v, err)
	}
	// A fresh reader sees v2.
	fresh := e.BeginRO()
	v, _, _ = fresh.Get("t", []byte("k"))
	if string(v) != "v2" {
		t.Fatalf("fresh read = %q", v)
	}
}

func TestSnapshotIsolationAcrossDelete(t *testing.T) {
	e, _, _ := newTestEngine(t)
	_ = e.CreateTable("t")
	w := e.Begin()
	_ = w.Put("t", []byte("k"), []byte("alive"))
	_ = w.Commit()

	reader := e.BeginRO()
	del := e.Begin()
	_ = del.Delete("t", []byte("k"))
	_ = del.Commit()

	if v, found, _ := reader.Get("t", []byte("k")); !found || string(v) != "alive" {
		t.Fatalf("old snapshot should still see the row: %q %v", v, found)
	}
	if _, found, _ := e.BeginRO().Get("t", []byte("k")); found {
		t.Fatal("new snapshot sees deleted row")
	}
}

func TestUncommittedInvisible(t *testing.T) {
	e, _, _ := newTestEngine(t)
	_ = e.CreateTable("t")
	w := e.Begin()
	_ = w.Put("t", []byte("k"), []byte("dirty"))
	if _, found, _ := e.BeginRO().Get("t", []byte("k")); found {
		t.Fatal("uncommitted write visible to other txn")
	}
	w.Abort()
	if _, found, _ := e.BeginRO().Get("t", []byte("k")); found {
		t.Fatal("aborted write visible")
	}
}

func TestWriteConflictFirstWriterWins(t *testing.T) {
	e, _, _ := newTestEngine(t)
	_ = e.CreateTable("t")
	t1 := e.Begin()
	t2 := e.Begin()
	if err := t1.Put("t", []byte("k"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Put("t", []byte("k"), []byte("b")); !errors.Is(err, txn.ErrWriteConflict) {
		t.Fatalf("err = %v, want write conflict", err)
	}
	// Different key is fine.
	if err := t2.Put("t", []byte("other"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	t1.Abort()
	// After abort the lock is free.
	if err := t2.Put("t", []byte("k"), []byte("b2")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestLostUpdatePrevented is the first-updater-wins rule of Snapshot
// Isolation: a transaction may not overwrite a version committed after its
// snapshot, even if the lock is free by commit time.
func TestLostUpdatePrevented(t *testing.T) {
	e, _, _ := newTestEngine(t)
	_ = e.CreateTable("t")
	seed := e.Begin()
	_ = seed.Put("t", []byte("k"), []byte("100"))
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	t1 := e.Begin()
	t2 := e.Begin() // same snapshot as t1
	_ = t1.Put("t", []byte("k"), []byte("90"))
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// t1's lock is released; t2 can stage its write...
	if err := t2.Put("t", []byte("k"), []byte("80")); err != nil {
		t.Fatal(err)
	}
	// ...but commit must fail: the row changed after t2's snapshot.
	if err := t2.Commit(); !errors.Is(err, txn.ErrWriteConflict) {
		t.Fatalf("lost update allowed: %v", err)
	}
	v, _, _ := e.BeginRO().Get("t", []byte("k"))
	if string(v) != "90" {
		t.Fatalf("k = %q, want t1's value", v)
	}
}

// TestTransferInvariantUnderContention hammers two accounts from many
// goroutines; the sum must be exact (atomicity + SI validation).
func TestTransferInvariantUnderContention(t *testing.T) {
	e, _, _ := newTestEngine(t)
	_ = e.CreateTable("acct")
	seed := e.Begin()
	_ = seed.Put("acct", []byte("a"), []byte{100})
	_ = seed.Put("acct", []byte("b"), []byte{100})
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tx := e.Begin()
				av, _, err := tx.Get("acct", []byte("a"))
				if err != nil {
					tx.Abort()
					continue
				}
				bv, _, _ := tx.Get("acct", []byte("b"))
				if av[0] == 0 {
					tx.Abort()
					continue
				}
				if tx.Put("acct", []byte("a"), []byte{av[0] - 1}) != nil ||
					tx.Put("acct", []byte("b"), []byte{bv[0] + 1}) != nil {
					tx.Abort()
					continue
				}
				_ = tx.Commit() // conflict aborts are fine; partial effects are not
			}
		}()
	}
	wg.Wait()
	tx := e.BeginRO()
	av, _, _ := tx.Get("acct", []byte("a"))
	bv, _, _ := tx.Get("acct", []byte("b"))
	if int(av[0])+int(bv[0]) != 200 {
		t.Fatalf("sum = %d, want 200", int(av[0])+int(bv[0]))
	}
}

func TestCommitAfterAbortAndDoubleFinish(t *testing.T) {
	e, _, _ := newTestEngine(t)
	_ = e.CreateTable("t")
	tx := e.Begin()
	tx.Abort()
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("commit after abort: %v", err)
	}
	if err := tx.Put("t", []byte("k"), nil); !errors.Is(err, ErrTxDone) {
		t.Fatalf("put after abort: %v", err)
	}
	tx.Abort() // double abort is a no-op
}

func TestReadOnlyTxRejectsWrites(t *testing.T) {
	e, _, _ := newTestEngine(t)
	_ = e.CreateTable("t")
	ro := e.BeginRO()
	if err := ro.Put("t", []byte("k"), nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
	if err := ro.Delete("t", []byte("k")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyCommitIsFree(t *testing.T) {
	e, _, pipe := newTestEngine(t)
	_ = e.CreateTable("t")
	before := len(pipe.Records())
	tx := e.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := len(pipe.Records()); got != before {
		t.Fatalf("empty commit logged %d records", got-before)
	}
}

func TestVersionChainAcrossManyUpdates(t *testing.T) {
	e, _, _ := newTestEngine(t)
	_ = e.CreateTable("t")
	var snaps []*Tx
	for i := 1; i <= 10; i++ {
		snaps = append(snaps, e.BeginRO())
		w := e.Begin()
		_ = w.Put("t", []byte("k"), []byte(fmt.Sprintf("v%d", i)))
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// snaps[i] was taken before update i+1 committed: sees v{i}.
	for i, s := range snaps {
		v, found, err := s.Get("t", []byte("k"))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if found {
				t.Fatalf("snap 0 sees %q", v)
			}
			continue
		}
		if !found || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("snap %d = %q %v", i, v, found)
		}
	}
}

func TestScanWithOverlay(t *testing.T) {
	e, _, _ := newTestEngine(t)
	_ = e.CreateTable("t")
	setup := e.Begin()
	for i := 0; i < 10; i++ {
		_ = setup.Put("t", []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	_ = setup.Commit()

	tx := e.Begin()
	_ = tx.Delete("t", []byte("k03"))
	_ = tx.Put("t", []byte("k05"), []byte("updated"))
	_ = tx.Put("t", []byte("k99"), []byte("new"))

	var keys, vals []string
	err := tx.Scan("t", []byte("k02"), nil, func(k, v []byte) bool {
		keys = append(keys, string(k))
		vals = append(vals, string(v))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := []string{"k02", "k04", "k05", "k06", "k07", "k08", "k09", "k99"}
	if fmt.Sprint(keys) != fmt.Sprint(wantKeys) {
		t.Fatalf("keys = %v, want %v", keys, wantKeys)
	}
	if vals[2] != "updated" || vals[7] != "new" {
		t.Fatalf("vals = %v", vals)
	}
	tx.Abort()

	// After abort, the base data is untouched.
	count := 0
	_ = e.BeginRO().Scan("t", nil, nil, func(k, v []byte) bool { count++; return true })
	if count != 10 {
		t.Fatalf("base rows = %d", count)
	}
}

func TestScanRangeAndEarlyStop(t *testing.T) {
	e, _, _ := newTestEngine(t)
	_ = e.CreateTable("t")
	w := e.Begin()
	for i := 0; i < 50; i++ {
		_ = w.Put("t", []byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	_ = w.Commit()
	count := 0
	_ = e.BeginRO().Scan("t", []byte("k010"), []byte("k020"), func(k, v []byte) bool {
		count++
		return true
	})
	if count != 10 {
		t.Fatalf("range rows = %d", count)
	}
	count = 0
	_ = e.BeginRO().Scan("t", nil, nil, func(k, v []byte) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop rows = %d", count)
	}
}

func TestReopenAfterRestart(t *testing.T) {
	pages := fcb.NewMemFile()
	pipe := NewMemPipeline()
	e, err := Create(Config{Pages: pages, Log: pipe})
	if err != nil {
		t.Fatal(err)
	}
	_ = e.CreateTable("t")
	w := e.Begin()
	for i := 0; i < 200; i++ {
		_ = w.Put("t", []byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	// "Failover": a fresh engine opens over the same pages (as a new
	// primary would after pages converge). The clock restarts; publish the
	// old visible watermark as the recovery would from commit records.
	e2, err := Open(Config{Pages: pages, Log: pipe})
	if err != nil {
		t.Fatal(err)
	}
	e2.Clock().Publish(e.Clock().Visible())
	v, found, err := e2.BeginRO().Get("t", []byte("k0100"))
	if err != nil || !found || string(v) != "v100" {
		t.Fatalf("after reopen: %q %v %v", v, found, err)
	}
	// New writes still work, including allocation continuity.
	w2 := e2.Begin()
	for i := 200; i < 400; i++ {
		_ = w2.Put("t", []byte(fmt.Sprintf("k%04d", i)), []byte("post"))
	}
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyEngineServesSnapshots(t *testing.T) {
	e, pages, _ := newTestEngine(t)
	_ = e.CreateTable("t")
	w := e.Begin()
	_ = w.Put("t", []byte("k"), []byte("v"))
	_ = w.Commit()

	ro, err := Open(Config{Pages: pages, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	ro.Clock().Publish(e.Clock().Visible())
	v, found, err := ro.BeginRO().Get("t", []byte("k"))
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("ro read: %q %v %v", v, found, err)
	}
	if err := ro.CreateTable("x"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ro DDL: %v", err)
	}
	tx := ro.Begin()
	if err := tx.Put("t", []byte("k"), nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ro write: %v", err)
	}
}

// TestReplicaConvergence replays the primary's log on a replica page file
// and verifies a read-only engine over it sees identical data — the path a
// Socrates secondary or page server takes.
func TestReplicaConvergence(t *testing.T) {
	e, _, pipe := newTestEngine(t)
	_ = e.CreateTable("acc")
	for i := 0; i < 100; i++ {
		w := e.Begin()
		_ = w.Put("acc", []byte(fmt.Sprintf("a%03d", i%20)), []byte(fmt.Sprintf("bal%d", i)))
		if i%3 == 0 {
			_ = w.Delete("acc", []byte(fmt.Sprintf("a%03d", (i+7)%20)))
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	replicaPages := fcb.NewMemFile()
	var visible uint64
	for _, rec := range pipe.Records() {
		switch {
		case rec.IsPageOp():
			pg, err := replicaPages.Read(rec.Page)
			if errors.Is(err, fcb.ErrNotFound) {
				pg = page.New(rec.Page, rec.PageType)
			} else if err != nil {
				t.Fatal(err)
			}
			if _, err := btree.Apply(pg, rec); err != nil {
				t.Fatal(err)
			}
			if err := replicaPages.Write(pg); err != nil {
				t.Fatal(err)
			}
		case rec.Kind == wal.KindTxnCommit:
			if ts := rec.CommitTS(); ts > visible {
				visible = ts
			}
		}
	}
	replica, err := Open(Config{Pages: replicaPages, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	replica.Clock().Publish(visible)

	var prim, repl []string
	collect := func(eng *Engine, out *[]string) {
		_ = eng.BeginRO().Scan("acc", nil, nil, func(k, v []byte) bool {
			*out = append(*out, string(k)+"="+string(v))
			return true
		})
	}
	collect(e, &prim)
	collect(replica, &repl)
	if len(prim) == 0 || fmt.Sprint(prim) != fmt.Sprint(repl) {
		t.Fatalf("replica diverged:\nprimary %v\nreplica %v", prim, repl)
	}
}

// TestDelayedPublishGating verifies the durability/visibility split: a
// commit whose log has not hardened is invisible to new snapshots.
func TestDelayedPublishGating(t *testing.T) {
	pages := fcb.NewMemFile()
	gate := &gatedPipeline{MemLog: wal.NewMemLog(), release: make(chan struct{})}
	e, err := Create(Config{Pages: pages, Log: gate})
	if err != nil {
		t.Fatal(err)
	}
	_ = e.CreateTable("t")

	gate.hold.Store(true)
	done := make(chan error)
	go func() {
		w := e.Begin()
		_ = w.Put("t", []byte("k"), []byte("v"))
		done <- w.Commit()
	}()
	// While hardening is stuck, the write must be invisible.
	for i := 0; i < 50; i++ {
		if _, found, _ := e.BeginRO().Get("t", []byte("k")); found {
			t.Fatal("unhardened commit visible")
		}
	}
	close(gate.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, found, _ := e.BeginRO().Get("t", []byte("k")); !found {
		t.Fatal("hardened commit invisible")
	}
}

type gatedPipeline struct {
	*wal.MemLog
	hold    holdFlag
	release chan struct{}
}

type holdFlag struct {
	mu sync.Mutex
	v  bool
}

func (h *holdFlag) Store(v bool) { h.mu.Lock(); h.v = v; h.mu.Unlock() }
func (h *holdFlag) Load() bool   { h.mu.Lock(); defer h.mu.Unlock(); return h.v }

func (g *gatedPipeline) WaitHarden(context.Context, page.LSN) error {
	if g.hold.Load() {
		<-g.release
	}
	return nil
}

func TestConcurrentCommitsDistinctKeys(t *testing.T) {
	e, _, _ := newTestEngine(t)
	_ = e.CreateTable("t")
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				tx := e.Begin()
				key := []byte(fmt.Sprintf("w%d-k%d", w, i))
				if err := tx.Put("t", key, []byte("v")); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	count := 0
	_ = e.BeginRO().Scan("t", nil, nil, func(k, v []byte) bool { count++; return true })
	if count != 200 {
		t.Fatalf("rows = %d, want 200", count)
	}
}

func TestConcurrentReadersDuringWrites(t *testing.T) {
	e, _, _ := newTestEngine(t)
	_ = e.CreateTable("t")
	seed := e.Begin()
	for i := 0; i < 300; i++ {
		_ = seed.Put("t", []byte(fmt.Sprintf("k%04d", i)), []byte("v0"))
	}
	_ = seed.Commit()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer churns
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := e.Begin()
			_ = tx.Put("t", []byte(fmt.Sprintf("k%04d", i%300)), []byte(fmt.Sprintf("v%d", i)))
			_ = tx.Commit()
			i++
		}
	}()
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 50; i++ {
				tx := e.BeginRO()
				count := 0
				if err := tx.Scan("t", nil, nil, func(k, v []byte) bool {
					count++
					return true
				}); err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				if count != 300 {
					t.Errorf("snapshot scan saw %d rows, want 300", count)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	wg.Wait()
}
