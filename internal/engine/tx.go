package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/txn"
	"socrates/internal/versionstore"
	"socrates/internal/wal"
)

// Tx is one transaction under Snapshot Isolation. Reads see the database as
// of the snapshot timestamp; writes buffer in the transaction (taking row
// locks eagerly, first-writer-wins) and apply to pages only at commit — so
// aborts are free and recovery needs no undo (§3.2).
type Tx struct {
	e        *Engine
	ctx      context.Context // bounds commit waits; carries the span identity
	id       uint64
	snapshot uint64
	readOnly bool
	done     bool

	// commitLSN is the LSN of the commit record, set during Commit the
	// moment the record is appended — before the harden wait. It therefore
	// survives ambiguous commits (ctx expired mid-wait), letting callers
	// (the chaos oracle in particular) know exactly which log position to
	// probe for the outcome. Zero until then and for empty write sets.
	commitLSN page.LSN

	writes   []writeOp
	writeIdx map[string]int // lock key → index of the latest write
	lockKeys []string
}

type writeOp struct {
	table  string
	key    []byte
	value  []byte
	delete bool
}

func lockKey(table string, key []byte) string {
	return table + "\x00" + string(key)
}

// Begin starts a read-write transaction at the current snapshot.
func (e *Engine) Begin() *Tx {
	return e.BeginContext(context.Background())
}

// BeginContext starts a read-write transaction bound to ctx: commit waits
// honor ctx's deadline, and the commit record is attributed to ctx's span
// (so the landing-zone write joins the request's trace).
func (e *Engine) BeginContext(ctx context.Context) *Tx {
	return &Tx{
		e:        e,
		ctx:      ctx,
		id:       e.ids.Next(),
		snapshot: e.clock.Snapshot(),
		writeIdx: make(map[string]int),
	}
}

// BeginRO starts a read-only transaction at the current snapshot.
func (e *Engine) BeginRO() *Tx {
	tx := e.Begin()
	tx.readOnly = true
	return tx
}

// BeginROContext starts a read-only transaction bound to ctx.
func (e *Engine) BeginROContext(ctx context.Context) *Tx {
	tx := e.BeginContext(ctx)
	tx.readOnly = true
	return tx
}

// BeginAt starts a read-only transaction at an explicit snapshot timestamp
// (time travel; used by PITR verification and tests).
func (e *Engine) BeginAt(snapshot uint64) *Tx {
	tx := e.BeginRO()
	tx.snapshot = snapshot
	return tx
}

// Snapshot reports the transaction's snapshot timestamp.
func (tx *Tx) Snapshot() uint64 { return tx.snapshot }

// ID reports the transaction ID.
func (tx *Tx) ID() uint64 { return tx.id }

// CommitLSN reports the LSN of this transaction's commit record: zero
// before Commit, after Abort, or when the write set was empty or rejected
// before reaching the log. Non-zero even when Commit returned an
// ambiguous-outcome error, so the caller can probe the log for the verdict.
func (tx *Tx) CommitLSN() page.LSN { return tx.commitLSN }

// Get returns the value of key in table visible to this transaction,
// including its own uncommitted writes.
func (tx *Tx) Get(table string, key []byte) ([]byte, bool, error) {
	if tx.done {
		return nil, false, ErrTxDone
	}
	if i, ok := tx.writeIdx[lockKey(table, key)]; ok {
		op := tx.writes[i]
		if op.delete {
			return nil, false, nil
		}
		return append([]byte(nil), op.value...), true, nil
	}
	tx.e.charge(cpuGet)
	return tx.e.readVisible(table, key, tx.snapshot)
}

// readVisible resolves a row at a snapshot through the version chain.
func (e *Engine) readVisible(table string, key []byte, snapshot uint64) ([]byte, bool, error) {
	tree, err := e.tableTree(table)
	if err != nil {
		return nil, false, err
	}
	var payload []byte
	var found bool
	err = e.withReadRetry(func() error {
		payload, found = nil, false
		raw, ok, err := tree.Get(key)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		head, err := versionstore.Decode(raw)
		if err != nil {
			return err
		}
		v, err := e.vs.Visible(head, snapshot)
		if err != nil {
			return err
		}
		if v == nil {
			return nil
		}
		payload = append([]byte(nil), v.Payload...)
		found = true
		return nil
	})
	return payload, found, err
}

// Put buffers an upsert of key→value, taking the row lock immediately.
func (tx *Tx) Put(table string, key, value []byte) error {
	return tx.write(writeOp{table: table, key: append([]byte(nil), key...),
		value: append([]byte(nil), value...)})
}

// Delete buffers a deletion of key, taking the row lock immediately.
func (tx *Tx) Delete(table string, key []byte) error {
	return tx.write(writeOp{table: table, key: append([]byte(nil), key...), delete: true})
}

func (tx *Tx) write(op writeOp) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.readOnly {
		return ErrReadOnly
	}
	if tx.e.cfg.ReadOnly {
		return ErrReadOnly
	}
	if _, err := tx.e.tableTree(op.table); err != nil {
		return err
	}
	lk := lockKey(op.table, op.key)
	if _, held := tx.writeIdx[lk]; !held {
		if err := tx.e.locks.Acquire(lk, tx.id); err != nil {
			return err
		}
		tx.lockKeys = append(tx.lockKeys, lk)
	}
	tx.e.charge(cpuPut)
	if i, ok := tx.writeIdx[lk]; ok {
		tx.writes[i] = op
		return nil
	}
	tx.writes = append(tx.writes, op)
	tx.writeIdx[lk] = len(tx.writes) - 1
	return nil
}

// Scan streams rows of table with lo <= key < hi (nil hi = unbounded) at
// the transaction's snapshot, overlaid with its own writes, in key order.
func (tx *Tx) Scan(table string, lo, hi []byte, fn func(key, value []byte) bool) error {
	if tx.done {
		return ErrTxDone
	}
	rows, err := tx.e.scanVisible(table, lo, hi, tx.snapshot)
	if err != nil {
		return err
	}
	// Overlay the transaction's own writes in range.
	if len(tx.writes) > 0 {
		merged := make(map[string][]byte, len(rows))
		order := make([]string, 0, len(rows))
		for _, r := range rows {
			merged[string(r.key)] = r.value
			order = append(order, string(r.key))
		}
		changed := false
		for _, i := range tx.writeIdx {
			op := tx.writes[i]
			if op.table != table {
				continue
			}
			if lo != nil && bytes.Compare(op.key, lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(op.key, hi) >= 0 {
				continue
			}
			k := string(op.key)
			if op.delete {
				if _, ok := merged[k]; ok {
					delete(merged, k)
					changed = true
				}
				continue
			}
			if _, ok := merged[k]; !ok {
				order = append(order, k)
			}
			merged[k] = op.value
			changed = true
		}
		if changed {
			sort.Strings(order)
			for _, k := range order {
				v, ok := merged[k]
				if !ok {
					continue
				}
				tx.e.charge(cpuScanRow)
				if !fn([]byte(k), v) {
					return nil
				}
			}
			return nil
		}
	}
	for _, r := range rows {
		tx.e.charge(cpuScanRow)
		if !fn(r.key, r.value) {
			return nil
		}
	}
	return nil
}

type kv struct {
	key   []byte
	value []byte
}

// scanVisible collects committed rows visible at the snapshot. It buffers
// the result so a mid-scan inconsistency (racing log apply) restarts the
// scan without re-emitting rows to the caller.
func (e *Engine) scanVisible(table string, lo, hi []byte, snapshot uint64) ([]kv, error) {
	tree, err := e.tableTree(table)
	if err != nil {
		return nil, err
	}
	var rows []kv
	err = e.withReadRetry(func() error {
		rows = rows[:0]
		var inner error
		err := tree.Scan(lo, hi, func(k, raw []byte) bool {
			head, err := versionstore.Decode(raw)
			if err != nil {
				inner = err
				return false
			}
			v, err := e.vs.Visible(head, snapshot)
			if err != nil {
				inner = err
				return false
			}
			if v != nil {
				rows = append(rows, kv{
					key:   append([]byte(nil), k...),
					value: append([]byte(nil), v.Payload...),
				})
			}
			return true
		})
		if inner != nil {
			return inner
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Commit applies the write set to pages, logs it as one group ending in the
// commit record, waits for the log to harden, and publishes the commit
// timestamp. On nil return the transaction is durable and visible.
//
// Ambiguity on cancellation: once the commit record is appended there is
// no undo — if ctx expires during the harden wait, Commit returns an
// error but the record is already in the log pipeline and may (and
// usually will) still harden and replicate. The error then means
// "outcome unknown", exactly like a client losing its connection mid
// COMMIT: the caller must re-read to learn the outcome. Commit detaches
// a background publisher for this case so that if the record does
// harden, the timestamp becomes visible on the primary without waiting
// for a later unrelated commit to publish a higher one.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	defer tx.releaseLocks()
	if len(tx.writes) == 0 {
		return nil
	}
	e := tx.e
	e.charge(cpuCommit)

	ctx := tx.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	// Spans join a request trace; they never root one here. A commit with
	// no ambient span (raw-engine callers, saturation benchmarks) pays
	// only the histogram below — no allocation, no tracer traffic.
	ctx, span := e.cfg.Tracer.JoinSpan(ctx, obs.TierCompute, "engine.commit")
	span.SetAttr("txn", strconv.FormatUint(tx.id, 10))
	defer span.End()

	// lock.latch: the single-writer commit latch. Recorded only when the
	// latch is contended — an uncontended TryLock is free and must not
	// inflate the wait count.
	if !e.commitMu.TryLock() {
		region := e.cfg.Waits.Begin(ctx, obs.WaitLockLatch)
		e.commitMu.Lock()
		region.End()
	}
	if e.failed {
		e.commitMu.Unlock()
		return ErrEngineFailed
	}
	// First-updater-wins validation (Snapshot Isolation): if any row in
	// the write set was committed after this transaction's snapshot, the
	// commit must fail — otherwise it would silently overwrite an update
	// it never saw (lost update). Validation runs before any page is
	// touched, so a conflicting transaction aborts for free.
	order := sortedWriteIndexes(tx)
	for _, i := range order {
		op := tx.writes[i]
		if err := e.validateWriteLocked(tx.snapshot, op); err != nil {
			e.commitMu.Unlock()
			return err
		}
	}
	ts := e.clock.AllocateCommit()
	e.cfg.Log.Append(&wal.Record{Txn: tx.id, Kind: wal.KindTxnBegin})
	for _, i := range order {
		op := tx.writes[i]
		if err := e.applyWriteLocked(tx.id, ts, op); err != nil {
			// Pages may hold a partial transaction: poison the engine so
			// the node restarts (crash-equivalent; the unhardened tail is
			// discarded by every consumer).
			e.failed = true
			e.failCause = err
			e.commitMu.Unlock()
			return fmt.Errorf("%w: %v", ErrEngineFailed, err)
		}
	}
	commitRec := wal.NewCommit(tx.id, ts)
	if sc := obs.SpanFromContext(ctx); sc.Valid() {
		// Annotate the commit record (in memory only) so the log flusher
		// can attribute the landing-zone write back to this commit's trace.
		commitRec.TraceID, commitRec.SpanID = uint64(sc.TraceID), uint64(sc.SpanID)
	}
	commitLSN := e.cfg.Log.Append(commitRec)
	tx.commitLSN = commitLSN
	e.commitMu.Unlock()
	// Publish the commit frontier before waiting on durability: the
	// watermark ladder's top rung is "appended", and the hardened rung
	// below it is what durability adds. Stamping here (not after
	// WaitHarden) makes harden lag legible in time domain.
	e.cfg.Watermarks.PublishCommit(uint64(commitLSN))

	if err := waitHarden(ctx, e, commitLSN); err != nil {
		span.SetError(err)
		if ctx.Err() != nil {
			// Ambiguous commit (see the method comment): the caller gave
			// up waiting, but the appended record may still harden.
			// Publish the timestamp once it does, off the caller's
			// context, so the committed data does not stay invisible on
			// the primary while secondaries apply it. Publish is
			// max-monotone, so a late publish can never move visibility
			// backwards; the goroutine is bounded by the log writer's
			// lifetime (WaitHarden returns on writer failure or close).
			go func() {
				if e.cfg.Log.WaitHarden(context.Background(), commitLSN) == nil {
					e.clock.Publish(ts)
				}
			}()
			return fmt.Errorf("commit wait interrupted, outcome unknown (txn %d may still be durable): %w", tx.id, err)
		}
		return err
	}
	e.clock.Publish(ts)
	e.cfg.Metrics.Histogram("compute.commit.latency").Observe(time.Since(start))
	e.cfg.Metrics.Counter("compute.commit.count").Inc()
	return nil
}

// sortedWriteIndexes returns the latest write per key in key order, which
// keeps page access patterns deterministic.
func sortedWriteIndexes(tx *Tx) []int {
	idx := make([]int, 0, len(tx.writeIdx))
	for _, i := range tx.writeIdx {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool {
		wa, wb := tx.writes[idx[a]], tx.writes[idx[b]]
		if wa.table != wb.table {
			return wa.table < wb.table
		}
		return bytes.Compare(wa.key, wb.key) < 0
	})
	return idx
}

// validateWriteLocked rejects a write whose row changed after the
// transaction's snapshot (first-updater-wins).
func (e *Engine) validateWriteLocked(snapshot uint64, op writeOp) error {
	tree, err := e.tableTree(op.table)
	if err != nil {
		return err
	}
	raw, found, err := tree.Get(op.key)
	if err != nil {
		return err
	}
	if !found {
		return nil
	}
	head, err := versionstore.Decode(raw)
	if err != nil {
		return err
	}
	if head.CommitTS > snapshot {
		return fmt.Errorf("%w: row committed at ts %d after snapshot %d",
			txn.ErrWriteConflict, head.CommitTS, snapshot)
	}
	return nil
}

// applyWriteLocked installs one committed write: the old row head (if any)
// moves into the version store, and the new head lands in the B-tree leaf.
func (e *Engine) applyWriteLocked(txnID, ts uint64, op writeOp) error {
	e.charge(cpuApply)
	tree, err := e.tableTree(op.table)
	if err != nil {
		return err
	}
	raw, found, err := tree.Get(op.key)
	if err != nil {
		return err
	}
	var prev versionstore.Ptr
	if found {
		oldHead, err := versionstore.Decode(raw)
		if err != nil {
			return err
		}
		ptr, err := e.vs.Append(txnID, oldHead)
		if err != nil {
			return err
		}
		prev = ptr
	}
	newHead := &versionstore.Version{
		CommitTS:  ts,
		Prev:      prev,
		Tombstone: op.delete,
		Payload:   op.value,
	}
	return tree.Put(txnID, op.key, newHead.Encode())
}

// Abort discards the transaction. Nothing reached pages or the log except
// possibly lock acquisitions, so abort is O(1) regardless of write count —
// the ADR property.
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	tx.releaseLocks()
}

func (tx *Tx) releaseLocks() {
	if len(tx.lockKeys) > 0 {
		tx.e.locks.ReleaseAll(tx.lockKeys, tx.id)
		tx.lockKeys = nil
	}
}

var _ = errors.Is // keep errors imported for doc examples
