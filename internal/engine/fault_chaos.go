//go:build chaosfault

package engine

import (
	"context"

	"socrates/internal/page"
)

// waitHarden under the chaosfault tag PLANTS A BUG on purpose: it
// acknowledges the commit without waiting for the log pipeline to harden
// it. An acked-but-unhardened commit is exactly the durability violation
// the Socrates protocol exists to prevent (§4.3: a commit returns only
// after the landing-zone quorum acks). The chaos harness's self-test
// builds with this tag and asserts that the oracle flags the resulting
// lost writes after a failover — proving the oracle has teeth.
//
// Never ship a binary built with this tag.
func waitHarden(context.Context, *Engine, page.LSN) error {
	return nil
}
