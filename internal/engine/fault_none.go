//go:build !chaosfault

package engine

import (
	"context"

	"socrates/internal/page"
)

// waitHarden blocks until the commit record at lsn is durable. This is the
// production implementation: a commit is acknowledged only after the log
// pipeline hardens it. The chaosfault build tag swaps in a deliberately
// broken version (ack before harden) so the chaos oracle's self-test can
// prove it detects durability violations.
func waitHarden(ctx context.Context, e *Engine, lsn page.LSN) error {
	return e.cfg.Log.WaitHarden(ctx, lsn)
}
