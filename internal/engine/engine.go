// Package engine is the relational storage engine the Socrates reproduction
// runs on every compute node — the stand-in for the unchanged core of SQL
// Server (§4.1.6). It composes the page-oriented B-tree, the shared version
// store, and the transaction manager into a multi-table database with
// Snapshot Isolation, addressing all storage through the fcb.PageFile
// virtualization layer so the same engine runs:
//
//   - on the Socrates primary (pages behind an RBPEX cache + GetPage@LSN,
//     log into the landing zone),
//   - on Socrates secondaries (read-only, pages converged by log apply),
//   - on HADR replicas (pages on a local disk, log shipped to peers),
//   - and in unit tests (in-memory pages, in-memory log).
//
// Recovery follows the ADR design (§3.2): uncommitted changes never reach
// data pages (writes buffer in the transaction and apply at commit, already
// holding their locks), so restart recovery is analysis + redo only — there
// is no undo phase to bound.
package engine

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"socrates/internal/btree"
	"socrates/internal/fcb"
	"socrates/internal/metrics"
	"socrates/internal/obs"
	"socrates/internal/page"
	"socrates/internal/txn"
	"socrates/internal/versionstore"
	"socrates/internal/wal"
)

// MetaPage is the catalog page: table roots, the page allocator cursor, and
// the version-store append cursor all live here as cells.
const MetaPage page.ID = 1

// Catalog cell keys.
const (
	metaNextKey = "next"  // next unallocated page ID
	metaVSKey   = "vscur" // current version-store append page
	tablePrefix = "t:"    // tablePrefix+name → root page ID
)

// Simulated CPU costs per engine operation, charged to the node's meter.
const (
	cpuGet     = 6 * time.Microsecond
	cpuPut     = 4 * time.Microsecond
	cpuCommit  = 14 * time.Microsecond
	cpuApply   = 9 * time.Microsecond // per write applied at commit
	cpuScanRow = 1 * time.Microsecond
)

// Errors.
var (
	ErrReadOnly        = errors.New("engine: read-only node")
	ErrNoTable         = errors.New("engine: table does not exist")
	ErrTableExists     = errors.New("engine: table already exists")
	ErrTxDone          = errors.New("engine: transaction already finished")
	ErrEngineFailed    = errors.New("engine: engine failed mid-commit; node must restart")
	ErrNotBootstrapped = errors.New("engine: database not bootstrapped")
)

// LogPipeline is the engine's handle to the durable log: Append stages a
// record (assigning its LSN) and WaitHarden blocks until the given LSN is
// durable or ctx is done. On the Socrates primary, hardening means
// quorum-acknowledged in the landing zone; on HADR, quorum-acknowledged by
// the replica set.
type LogPipeline interface {
	wal.Logger
	WaitHarden(ctx context.Context, lsn page.LSN) error
}

// MemPipeline is an in-memory LogPipeline for tests: hardening is immediate.
type MemPipeline struct{ *wal.MemLog }

// NewMemPipeline returns an empty in-memory pipeline.
func NewMemPipeline() MemPipeline { return MemPipeline{wal.NewMemLog()} }

// WaitHarden reports immediate durability.
func (MemPipeline) WaitHarden(context.Context, page.LSN) error { return nil }

// Config assembles an engine.
type Config struct {
	// Pages is the page storage FCB.
	Pages fcb.PageFile
	// Log is the durable log pipeline. Read-only engines may pass nil.
	Log LogPipeline
	// ReadOnly marks secondary engines: all write paths fail.
	ReadOnly bool
	// WaitFresh, if set, is invoked when a read races log apply
	// (btree.ErrInconsistent) before the read retries. Secondaries use it
	// to wait for the apply thread to advance (§4.5).
	WaitFresh func()
	// Meter, if set, is charged the simulated CPU cost of operations.
	Meter *metrics.CPUMeter
	// Tracer, if set, records commit-path spans (tier "compute").
	Tracer *obs.Tracer
	// Metrics, if set, receives engine counters and latency histograms.
	Metrics *obs.Registry
	// Watermarks, if set, receives the commit-frontier watermark
	// (compute.commit_lsn) plus the LSN→wall-clock stamps that let the
	// watchdog express follower lag in milliseconds.
	Watermarks *obs.WatermarkSet
	// Waits, if set, receives wait-event accounting: lock.latch when a
	// commit contends the single-writer latch, lock.row when a read blocks
	// on log apply (visibility retry). Nil disables recording.
	Waits *obs.WaitRecorder
}

// Engine is one node's database engine instance.
type Engine struct {
	cfg   Config
	clock *txn.Clock
	locks *txn.LockTable
	ids   txn.IDSource

	// commitMu serializes every page-mutating path (commit apply, DDL,
	// allocation): the engine is single-writer, like a SQL Server primary.
	commitMu  sync.Mutex
	next      uint64 // next page ID to allocate (under commitMu)
	failed    bool   // a commit failed mid-apply; the node must restart
	failCause error  // what poisoned the engine

	vs *versionstore.Store

	mu     sync.Mutex
	tables map[string]*btree.Tree
}

// Create bootstraps a fresh database into cfg.Pages and returns the engine.
func Create(cfg Config) (*Engine, error) {
	if cfg.ReadOnly {
		return nil, errors.New("engine: cannot create a database read-only")
	}
	if cfg.Log == nil {
		return nil, errors.New("engine: Create requires a log pipeline")
	}
	e := newEngine(cfg)
	e.next = uint64(MetaPage) + 1

	// Format the catalog page.
	meta := page.New(MetaPage, page.TypeMeta)
	payload := btree.EmptyNodePayload()
	rec := &wal.Record{Kind: wal.KindPageImage, Page: MetaPage,
		PageType: page.TypeMeta, Value: payload}
	lsn := cfg.Log.Append(rec)
	meta.Data = payload
	meta.LSN = lsn
	if err := cfg.Pages.Write(meta); err != nil {
		return nil, err
	}
	if err := e.metaPutLocked(metaNextKey, e.next); err != nil {
		return nil, err
	}
	vs, err := versionstore.New(e, cfg.Log, page.InvalidID)
	if err != nil {
		return nil, err
	}
	e.vs = vs
	vs.OnNewPage = e.persistVSPage

	// Delimit bootstrap as a hardened group.
	commitLSN := cfg.Log.Append(wal.NewCommit(0, 0))
	if err := cfg.Log.WaitHarden(context.Background(), commitLSN); err != nil {
		return nil, err
	}
	return e, nil
}

// Open attaches an engine to an existing database in cfg.Pages. Read-only
// engines (secondaries) may open with a nil log.
func Open(cfg Config) (*Engine, error) {
	e := newEngine(cfg)
	meta, err := cfg.Pages.Read(MetaPage)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotBootstrapped, err)
	}
	next, found, err := lookupU64(meta, metaNextKey)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("%w: catalog missing allocator cursor", ErrNotBootstrapped)
	}
	e.next = next
	vscur := page.InvalidID
	if v, ok, err := lookupU64(meta, metaVSKey); err != nil {
		return nil, err
	} else if ok {
		vscur = page.ID(v)
	}
	log := cfg.Log
	if log == nil {
		log = nopLog{}
	}
	vs, err := versionstore.New(e, log, vscur)
	if err != nil {
		return nil, err
	}
	e.vs = vs
	vs.OnNewPage = e.persistVSPage
	return e, nil
}

func newEngine(cfg Config) *Engine {
	return &Engine{
		cfg:    cfg,
		clock:  txn.NewClock(),
		locks:  txn.NewLockTable(),
		tables: make(map[string]*btree.Tree),
	}
}

// nopLog satisfies LogPipeline for read-only engines that never append.
type nopLog struct{}

func (nopLog) Append(*wal.Record) page.LSN {
	panic("engine: append on read-only node")
}

func (nopLog) WaitHarden(context.Context, page.LSN) error { return nil }

// Clock exposes the timestamp clock (secondaries publish commit timestamps
// from applied log; benches take snapshots).
func (e *Engine) Clock() *txn.Clock { return e.clock }

// Tracer exposes the engine's tracer (nil when unconfigured; nil is a
// valid no-op tracer).
func (e *Engine) Tracer() *obs.Tracer { return e.cfg.Tracer }

// Metrics exposes the engine's metrics registry (nil when unconfigured).
func (e *Engine) Metrics() *obs.Registry { return e.cfg.Metrics }

// VersionStore exposes the shared version store.
func (e *Engine) VersionStore() *versionstore.Store { return e.vs }

func (e *Engine) charge(d time.Duration) {
	if e.cfg.Meter != nil {
		e.cfg.Meter.Charge(d)
	}
}

// --- btree.Pager implementation (the engine is its own pager) ---

// Read fetches a page through the FCB layer.
func (e *Engine) Read(id page.ID) (*page.Page, error) { return e.cfg.Pages.Read(id) }

// Write installs a page through the FCB layer.
func (e *Engine) Write(pg *page.Page) error { return e.cfg.Pages.Write(pg) }

// Allocate hands out a fresh page ID and durably advances the allocator
// cursor in the catalog. Callers hold commitMu (all allocation happens on
// commit/DDL paths).
func (e *Engine) Allocate(t page.Type) (*page.Page, error) {
	if e.cfg.ReadOnly {
		return nil, ErrReadOnly
	}
	id := page.ID(e.next)
	e.next++
	if err := e.metaPutLocked(metaNextKey, e.next); err != nil {
		return nil, err
	}
	return page.New(id, t), nil
}

// persistVSPage records the version store's new append page in the catalog.
func (e *Engine) persistVSPage(id page.ID) {
	// Called from vs.Append, which runs under commitMu.
	if err := e.metaPutLocked(metaVSKey, uint64(id)); err != nil {
		e.failed = true
	}
}

// metaPutLocked upserts a catalog cell (caller holds commitMu or is
// bootstrapping single-threaded).
func (e *Engine) metaPutLocked(key string, val uint64) error {
	meta, err := e.cfg.Pages.Read(MetaPage)
	if err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	rec := &wal.Record{Kind: wal.KindCellPut, Page: MetaPage,
		PageType: page.TypeMeta, Key: []byte(key), Value: buf[:]}
	e.cfg.Log.Append(rec)
	if _, err := btree.Apply(meta, rec); err != nil {
		return err
	}
	return e.cfg.Pages.Write(meta)
}

func lookupU64(meta *page.Page, key string) (uint64, bool, error) {
	v, found, err := btree.LookupCell(meta, []byte(key))
	if err != nil || !found {
		return 0, found, err
	}
	if len(v) != 8 {
		return 0, false, fmt.Errorf("engine: catalog cell %q has %d bytes", key, len(v))
	}
	return binary.LittleEndian.Uint64(v), true, nil
}

// --- catalog operations ---

// CreateTable creates an empty table. DDL is auto-committed and durable on
// return.
func (e *Engine) CreateTable(name string) error {
	return e.CreateTableContext(context.Background(), name)
}

// CreateTableContext is CreateTable bounded by (and traced through) ctx.
func (e *Engine) CreateTableContext(ctx context.Context, name string) error {
	if e.cfg.ReadOnly {
		return ErrReadOnly
	}
	if name == "" || strings.ContainsRune(name, 0) {
		return errors.New("engine: invalid table name")
	}
	e.commitMu.Lock()
	if e.failed {
		e.commitMu.Unlock()
		return ErrEngineFailed
	}
	meta, err := e.cfg.Pages.Read(MetaPage)
	if err != nil {
		e.commitMu.Unlock()
		return err
	}
	if _, exists, err := lookupU64(meta, tablePrefix+name); err != nil {
		e.commitMu.Unlock()
		return err
	} else if exists {
		e.commitMu.Unlock()
		return fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	tree, err := btree.Create(e, e.cfg.Log, 0)
	if err != nil {
		e.commitMu.Unlock()
		return err
	}
	if err := e.metaPutLocked(tablePrefix+name, uint64(tree.Root())); err != nil {
		e.commitMu.Unlock()
		return err
	}
	ts := e.clock.AllocateCommit()
	rec := wal.NewCommit(0, ts)
	if sc := obs.SpanFromContext(ctx); sc.Valid() {
		rec.TraceID, rec.SpanID = uint64(sc.TraceID), uint64(sc.SpanID)
	}
	commitLSN := e.cfg.Log.Append(rec)
	e.commitMu.Unlock()

	if err := e.cfg.Log.WaitHarden(ctx, commitLSN); err != nil {
		return err
	}
	e.clock.Publish(ts)
	e.mu.Lock()
	e.tables[name] = tree
	e.mu.Unlock()
	return nil
}

// tableTree resolves a table's B-tree, consulting the catalog page on miss
// (so secondaries pick up DDL applied by the log).
func (e *Engine) tableTree(name string) (*btree.Tree, error) {
	e.mu.Lock()
	if t, ok := e.tables[name]; ok {
		e.mu.Unlock()
		return t, nil
	}
	e.mu.Unlock()

	meta, err := e.cfg.Pages.Read(MetaPage)
	if err != nil {
		return nil, err
	}
	root, found, err := lookupU64(meta, tablePrefix+name)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	log := e.cfg.Log
	if log == nil {
		log = nopLog{}
	}
	t := btree.Open(e, log, page.ID(root))
	e.mu.Lock()
	e.tables[name] = t
	e.mu.Unlock()
	return t, nil
}

// Tables lists table names in the catalog, sorted.
func (e *Engine) Tables() ([]string, error) {
	meta, err := e.cfg.Pages.Read(MetaPage)
	if err != nil {
		return nil, err
	}
	var names []string
	err = btree.RangeCells(meta, func(k, _ []byte) bool {
		if strings.HasPrefix(string(k), tablePrefix) {
			names = append(names, strings.TrimPrefix(string(k), tablePrefix))
		}
		return true
	})
	return names, err
}

// HasTable reports whether the table exists.
func (e *Engine) HasTable(name string) bool {
	_, err := e.tableTree(name)
	return err == nil
}

// AllocatedPages reports how many pages the database has allocated — the
// database's physical size in pages.
func (e *Engine) AllocatedPages() int {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	return int(e.next) - 1
}

// WriteCheckpoint appends a checkpoint marker to the log and returns its
// LSN (bookkeeping for recovery bounds).
func (e *Engine) WriteCheckpoint() (page.LSN, error) {
	if e.cfg.ReadOnly {
		return 0, ErrReadOnly
	}
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	rec := &wal.Record{Kind: wal.KindCheckpoint}
	return e.cfg.Log.Append(rec), nil
}

// TruncateVersions advances the version-store watermark: snapshots older
// than beforeTS may no longer resolve (aggressive log/version reclamation).
func (e *Engine) TruncateVersions(beforeTS uint64) { e.vs.SetWatermark(beforeTS) }

// Failed reports whether the engine poisoned itself mid-commit, and why.
func (e *Engine) Failed() (bool, error) {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	return e.failed, e.failCause
}

// withReadRetry runs f, retrying when it races log apply or page fetches.
func (e *Engine) withReadRetry(f func() error) error {
	const maxAttempts = 300
	var err error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		err = f()
		if err == nil || !errors.Is(err, btree.ErrInconsistent) {
			return err
		}
		// lock.row: a reader blocked behind log apply is the MVCC analogue
		// of a row-lock wait (the row's consistent image is not yet
		// available at this node). Aggregate-only: reads do not thread ctx.
		region := e.cfg.Waits.Begin(nil, obs.WaitLockRow)
		if e.cfg.WaitFresh != nil {
			e.cfg.WaitFresh()
		} else {
			//socrates:sleep-ok bounded micro-backoff for read/apply races when no WaitFresh signal hook is configured; nodes with an apply loop install one
			time.Sleep(50 * time.Microsecond)
		}
		region.End()
	}
	return err
}
