package xstore

import (
	"sync"
	"time"
)

// limiter is a token bucket over bytes/second with a one-second burst,
// used for the store-level ingest and egress caps.
type limiter struct {
	mu     sync.Mutex
	rate   float64
	tokens float64
	last   time.Time
}

func newLimiter(bytesPerSec float64) *limiter {
	return &limiter{rate: bytesPerSec, tokens: bytesPerSec, last: time.Now()}
}

// acquire blocks until n byte-tokens are available.
func (l *limiter) acquire(n int) {
	need := float64(n)
	for {
		l.mu.Lock()
		now := time.Now()
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.rate {
			l.tokens = l.rate
		}
		l.last = now
		if l.tokens >= need {
			l.tokens -= need
			l.mu.Unlock()
			return
		}
		deficit := need - l.tokens
		l.mu.Unlock()
		wait := time.Duration(deficit / l.rate * float64(time.Second))
		if wait < 100*time.Microsecond {
			wait = 100 * time.Microsecond
		}
		//socrates:sleep-ok token-bucket pacing: the computed sleep IS the rate limit; tokens refill with time, not with an event to wait on
		time.Sleep(wait)
	}
}
