package xstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"socrates/internal/simdisk"
)

func newFast() *Store { return New(Config{Profile: simdisk.Instant}) }

func TestPutGetRoundTrip(t *testing.T) {
	s := newFast()
	if err := s.Put("a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "alpha" {
		t.Fatalf("got %q", got)
	}
}

func TestGetMissing(t *testing.T) {
	s := newFast()
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPutReplacesVersion(t *testing.T) {
	s := newFast()
	_ = s.Put("a", []byte("v1"))
	_ = s.Put("a", []byte("version-two"))
	got, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "version-two" {
		t.Fatalf("got %q", got)
	}
	n, _ := s.Size("a")
	if n != int64(len("version-two")) {
		t.Fatalf("size = %d", n)
	}
}

func TestAppendBuildsMultiExtentBlob(t *testing.T) {
	s := newFast()
	for i := 0; i < 5; i++ {
		if err := s.Append("log", []byte(fmt.Sprintf("rec%d;", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Get("log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "rec0;rec1;rec2;rec3;rec4;" {
		t.Fatalf("got %q", got)
	}
}

func TestReadAtSpansExtents(t *testing.T) {
	s := newFast()
	_ = s.Append("b", []byte("aaaa"))
	_ = s.Append("b", []byte("bbbb"))
	_ = s.Append("b", []byte("cccc"))
	got, err := s.ReadAt("b", 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aabbbbcc" {
		t.Fatalf("got %q", got)
	}
}

func TestReadAtBounds(t *testing.T) {
	s := newFast()
	_ = s.Put("b", []byte("12345"))
	if _, err := s.ReadAt("b", 3, 10); err == nil {
		t.Fatal("read past end should fail")
	}
	if _, err := s.ReadAt("b", -1, 2); err == nil {
		t.Fatal("negative offset should fail")
	}
	got, err := s.ReadAt("b", 5, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("zero-length read at end: %v %q", err, got)
	}
}

func TestDeleteAndExists(t *testing.T) {
	s := newFast()
	_ = s.Put("a", []byte("x"))
	if !s.Exists("a") {
		t.Fatal("blob should exist")
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if s.Exists("a") {
		t.Fatal("blob should be gone")
	}
	if err := s.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestListByPrefix(t *testing.T) {
	s := newFast()
	for _, n := range []string{"db1/p0", "db1/p1", "db2/p0"} {
		_ = s.Put(n, []byte("x"))
	}
	got := s.List("db1/")
	if len(got) != 2 || got[0] != "db1/p0" || got[1] != "db1/p1" {
		t.Fatalf("list = %v", got)
	}
	if all := s.List(""); len(all) != 3 {
		t.Fatalf("full list = %v", all)
	}
}

func TestSnapshotIsolatesFromLaterWrites(t *testing.T) {
	s := newFast()
	_ = s.Put("data", []byte("before"))
	if err := s.Snapshot("snap1"); err != nil {
		t.Fatal(err)
	}
	_ = s.Put("data", []byte("after"))
	_ = s.Put("new", []byte("created-later"))

	got, err := s.GetFromSnapshot("snap1", "data")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "before" {
		t.Fatalf("snapshot read %q, want before", got)
	}
	if _, err := s.GetFromSnapshot("snap1", "new"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("later blob visible in snapshot: %v", err)
	}
	// Live view unaffected.
	live, _ := s.Get("data")
	if string(live) != "after" {
		t.Fatalf("live read %q", live)
	}
}

func TestSnapshotSurvivesDelete(t *testing.T) {
	s := newFast()
	_ = s.Put("data", []byte("precious"))
	_ = s.Snapshot("snap")
	_ = s.Delete("data")
	got, err := s.GetFromSnapshot("snap", "data")
	if err != nil || string(got) != "precious" {
		t.Fatalf("snapshot lost data: %v %q", err, got)
	}
}

// TestSnapshotIsConstantTime is the paper's headline backup property: the
// snapshot cost must not depend on data size (§3.5).
func TestSnapshotIsConstantTime(t *testing.T) {
	s := newFast()
	_ = s.Put("small", make([]byte, 1024))
	timeSnap := func(name string) time.Duration {
		start := time.Now()
		if err := s.Snapshot(name); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	small := timeSnap("s1")
	_ = s.Put("big", make([]byte, 16<<20))
	big := timeSnap("s2")
	// Both must be quick metadata ops; allow generous slack for scheduling.
	if small > 50*time.Millisecond || big > 50*time.Millisecond {
		t.Fatalf("snapshot not constant-time: small=%v big=%v", small, big)
	}
	r, _, br, _ := s.Stats()
	_ = r
	if br != 0 {
		t.Fatalf("snapshot moved %d bytes of data", br)
	}
}

func TestRestoreCreatesIndependentBlobs(t *testing.T) {
	s := newFast()
	_ = s.Put("db/page0", []byte("zero"))
	_ = s.Put("db/page1", []byte("one"))
	_ = s.Snapshot("bak")
	_ = s.Put("db/page0", []byte("ZERO-MUTATED"))

	if err := s.Restore("bak", "restored/"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("restored/db/page0")
	if err != nil || string(got) != "zero" {
		t.Fatalf("restored read: %v %q", err, got)
	}
	// Copy-on-write: writing the restored blob must not disturb the
	// original or the snapshot.
	_ = s.Put("restored/db/page0", []byte("patched"))
	orig, _ := s.Get("db/page0")
	if string(orig) != "ZERO-MUTATED" {
		t.Fatalf("original disturbed: %q", orig)
	}
	snap, _ := s.GetFromSnapshot("bak", "db/page0")
	if string(snap) != "zero" {
		t.Fatalf("snapshot disturbed: %q", snap)
	}
}

func TestRestoreMissingSnapshot(t *testing.T) {
	s := newFast()
	if err := s.Restore("ghost", "x/"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestSnapshotsOrderedByTime(t *testing.T) {
	s := newFast()
	_ = s.Snapshot("b")
	_ = s.Snapshot("a")
	_ = s.Snapshot("c")
	got := s.Snapshots()
	if len(got) != 3 || got[0] != "b" || got[1] != "a" || got[2] != "c" {
		t.Fatalf("snapshots = %v, want creation order", got)
	}
	seqB, _, _ := s.SnapshotInfo("b")
	seqC, _, _ := s.SnapshotInfo("c")
	if seqB >= seqC {
		t.Fatalf("snapshot seqs not monotonic: %d %d", seqB, seqC)
	}
}

func TestDeleteSnapshot(t *testing.T) {
	s := newFast()
	_ = s.Snapshot("s")
	if err := s.DeleteSnapshot("s"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteSnapshot("s"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestListFromSnapshot(t *testing.T) {
	s := newFast()
	_ = s.Put("db/a", []byte("1"))
	_ = s.Snapshot("s")
	_ = s.Put("db/b", []byte("2"))
	names, err := s.ListFromSnapshot("s", "db/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "db/a" {
		t.Fatalf("names = %v", names)
	}
}

func TestCompactPreservesAllVersions(t *testing.T) {
	s := newFast()
	_ = s.Put("a", []byte("a-v1"))
	_ = s.Snapshot("snap")
	_ = s.Put("a", []byte("a-v2"))
	for i := 0; i < 3; i++ {
		_ = s.Append("log", []byte("entry;"))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("a"); string(got) != "a-v2" {
		t.Fatalf("live blob after compact: %q", got)
	}
	if got, _ := s.GetFromSnapshot("snap", "a"); string(got) != "a-v1" {
		t.Fatalf("snapshot blob after compact: %q", got)
	}
	if got, _ := s.Get("log"); string(got) != "entry;entry;entry;" {
		t.Fatalf("appended blob after compact: %q", got)
	}
}

func TestOutagePropagates(t *testing.T) {
	s := newFast()
	_ = s.Put("a", []byte("x"))
	s.SetOutage(true)
	if err := s.Put("b", []byte("y")); err == nil {
		t.Fatal("put during outage should fail")
	}
	if _, err := s.Get("a"); err == nil {
		t.Fatal("get during outage should fail")
	}
	s.SetOutage(false)
	if _, err := s.Get("a"); err != nil {
		t.Fatalf("after outage: %v", err)
	}
}

func TestLiveAndLogBytes(t *testing.T) {
	s := newFast()
	_ = s.Put("a", make([]byte, 100))
	_ = s.Put("a", make([]byte, 100)) // old version becomes garbage
	if s.LiveBytes() != 100 {
		t.Fatalf("live = %d, want 100", s.LiveBytes())
	}
	if s.LogBytes() != 200 {
		t.Fatalf("log = %d, want 200", s.LogBytes())
	}
}

func TestIngestCapThrottles(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	s := New(Config{Profile: simdisk.Instant, IngestMBps: 1})
	_ = s.Put("burst", make([]byte, 1<<20)) // consume the burst allowance
	start := time.Now()
	_ = s.Put("x", make([]byte, 512<<10)) // 0.5 MiB at 1 MiB/s
	if e := time.Since(start); e < 300*time.Millisecond {
		t.Fatalf("ingest-capped put took %v, want >= 300ms", e)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := newFast()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			name := fmt.Sprintf("blob-%d", n)
			payload := bytes.Repeat([]byte{byte(n)}, 256)
			for j := 0; j < 40; j++ {
				if err := s.Put(name, payload); err != nil {
					t.Error(err)
					return
				}
				got, err := s.Get(name)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("worker %d read torn blob", n)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// Property: a random interleaving of Put/Append per blob matches a simple
// map[string][]byte model.
func TestBlobModelEquivalence(t *testing.T) {
	type op struct {
		Name   uint8
		Append bool
		Data   []byte
	}
	f := func(ops []op) bool {
		s := newFast()
		model := map[string][]byte{}
		for _, o := range ops {
			name := fmt.Sprintf("b%d", o.Name%4)
			if o.Append {
				if err := s.Append(name, o.Data); err != nil {
					return false
				}
				model[name] = append(model[name], o.Data...)
			} else {
				if err := s.Put(name, o.Data); err != nil {
					return false
				}
				model[name] = append([]byte(nil), o.Data...)
			}
		}
		for name, want := range model {
			got, err := s.Get(name)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshots are immutable under any later mutation sequence.
func TestSnapshotImmutabilityProperty(t *testing.T) {
	f := func(initial, later [][]byte) bool {
		s := newFast()
		want := map[string][]byte{}
		for i, d := range initial {
			name := fmt.Sprintf("b%d", i%3)
			_ = s.Put(name, d)
			want[name] = append([]byte(nil), d...)
		}
		_ = s.Snapshot("frozen")
		for i, d := range later {
			name := fmt.Sprintf("b%d", i%3)
			_ = s.Append(name, d)
		}
		for name, w := range want {
			got, err := s.GetFromSnapshot("frozen", name)
			if err != nil || !bytes.Equal(got, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
