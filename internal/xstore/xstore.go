// Package xstore simulates Azure Storage (XStore): the cheap, durable,
// hard-disk-based, log-structured blob service that holds the "truth" of
// every Socrates database (§4.7).
//
// The store is log-structured (Rosenblum/Ousterhout style, as [19] in the
// paper): every write appends to a single device-backed log, and a blob is
// a list of extents into that log. This gives the two properties Socrates
// leans on:
//
//   - Snapshot is a constant-time metadata operation: it copies the blob map
//     (pointers into the log) and moves no data. Backups cost nothing on the
//     compute path (§3.5).
//   - Restore is likewise a metadata copy: new blobs are created pointing at
//     the snapshotted extents; copy-on-write falls out because new writes
//     always append fresh extents.
//
// Throughput is capped by the HDD device profile plus optional ingest and
// egress limits — the ingest limit is what throttles HADR's log backup in
// the paper's Table 5 experiment.
package xstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"socrates/internal/obs"
	"socrates/internal/simdisk"
)

// ErrNotFound is returned when a blob or snapshot does not exist.
var ErrNotFound = errors.New("xstore: not found")

// extent is a contiguous run of bytes in the store's log.
type extent struct {
	off    int64
	length int64
}

// blobMeta describes one blob version as a list of extents.
type blobMeta struct {
	extents []extent
	size    int64
	modSeq  uint64 // logical time of last modification
}

func (b *blobMeta) clone() *blobMeta {
	c := &blobMeta{size: b.size, modSeq: b.modSeq}
	c.extents = append([]extent(nil), b.extents...)
	return c
}

// snapshot is a frozen view of the blob namespace at a logical time.
type snapshot struct {
	seq   uint64
	taken time.Time
	blobs map[string]*blobMeta
}

// Config tunes a Store.
type Config struct {
	// Profile is the device model under the store. Defaults to simdisk.HDD.
	Profile simdisk.Profile
	// IngestMBps caps write bandwidth into the store (0 = uncapped).
	// This is the knob that throttles HADR log backups (Table 5).
	IngestMBps float64
	// EgressMBps caps read bandwidth out of the store (0 = uncapped).
	EgressMBps float64
	// Seed fixes device jitter for reproducible runs.
	Seed int64
}

// Store is a simulated XStore account. All methods are safe for concurrent
// use.
type Store struct {
	dev    *simdisk.Device
	ingest *limiter
	egress *limiter

	metrics *obs.Registry // nil-safe; set via SetMetrics

	mu        sync.Mutex
	head      int64 // next append offset in the log
	seq       uint64
	blobs     map[string]*blobMeta
	snapshots map[string]*snapshot
}

// SetMetrics attaches a per-tier metrics registry. The store records write
// and read latency/volume under the "xstore." namespace. Safe to call once
// at wiring time, before concurrent use; a nil registry disables recording.
func (s *Store) SetMetrics(r *obs.Registry) { s.metrics = r }

// New creates an empty store.
func New(cfg Config) *Store {
	p := cfg.Profile
	if p.Name == "" {
		p = simdisk.HDD
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	s := &Store{
		dev:       simdisk.New(p, simdisk.WithSeed(seed)),
		blobs:     make(map[string]*blobMeta),
		snapshots: make(map[string]*snapshot),
	}
	if cfg.IngestMBps > 0 {
		s.ingest = newLimiter(cfg.IngestMBps * 1024 * 1024)
	}
	if cfg.EgressMBps > 0 {
		s.egress = newLimiter(cfg.EgressMBps * 1024 * 1024)
	}
	return s
}

// SetOutage injects or clears a sticky outage on the underlying device.
// Used to exercise the page-server insulation path (§4.6).
func (s *Store) SetOutage(on bool) { s.dev.SetOutage(on) }

// Seq reports the store's logical clock (advances on every mutation).
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Stats reports cumulative device reads, writes, bytes read, bytes written.
func (s *Store) Stats() (reads, writes, bytesRead, bytesWritten int64) {
	return s.dev.Stats()
}

// appendLog writes data at the head of the log and returns its extent.
// Callers must not hold s.mu (device I/O sleeps).
func (s *Store) appendLog(data []byte) (extent, error) {
	start := time.Now()
	if s.ingest != nil {
		s.ingest.acquire(len(data))
	}
	s.mu.Lock()
	off := s.head
	s.head += int64(len(data))
	s.mu.Unlock()
	if err := s.dev.WriteAt(data, off); err != nil {
		return extent{}, err
	}
	s.metrics.Histogram("xstore.write.latency").Since(start)
	s.metrics.Counter("xstore.write.bytes").Add(uint64(len(data)))
	s.metrics.Counter("xstore.write.ops").Inc()
	return extent{off: off, length: int64(len(data))}, nil
}

// Put stores data as a complete new version of the named blob.
func (s *Store) Put(name string, data []byte) error {
	ext, err := s.appendLog(data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.blobs[name] = &blobMeta{extents: []extent{ext}, size: ext.length, modSeq: s.seq}
	return nil
}

// Append adds data to the end of the named blob, creating it if absent.
// This is the LT log-archive write path: destaging appends log ranges.
func (s *Store) Append(name string, data []byte) error {
	ext, err := s.appendLog(data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	b := s.blobs[name]
	if b == nil {
		b = &blobMeta{}
		s.blobs[name] = b
	}
	b.extents = append(b.extents, ext)
	b.size += ext.length
	b.modSeq = s.seq
	return nil
}

// Get returns the full contents of the named blob.
func (s *Store) Get(name string) ([]byte, error) {
	s.mu.Lock()
	b, ok := s.blobs[name]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: blob %q", ErrNotFound, name)
	}
	meta := b.clone()
	s.mu.Unlock()
	return s.readMeta(meta, 0, meta.size)
}

// ReadAt reads length bytes from the blob starting at off.
func (s *Store) ReadAt(name string, off, length int64) ([]byte, error) {
	s.mu.Lock()
	b, ok := s.blobs[name]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: blob %q", ErrNotFound, name)
	}
	meta := b.clone()
	s.mu.Unlock()
	if off < 0 || off+length > meta.size {
		return nil, fmt.Errorf("xstore: read [%d,%d) beyond blob %q size %d",
			off, off+length, name, meta.size)
	}
	return s.readMeta(meta, off, length)
}

// readMeta gathers [off, off+length) across the blob's extents.
func (s *Store) readMeta(b *blobMeta, off, length int64) ([]byte, error) {
	start := time.Now()
	defer func() {
		s.metrics.Histogram("xstore.read.latency").Since(start)
		s.metrics.Counter("xstore.read.ops").Inc()
	}()
	s.metrics.Counter("xstore.read.bytes").Add(uint64(length))
	if s.egress != nil {
		s.egress.acquire(int(length))
	}
	out := make([]byte, 0, length)
	pos := int64(0)
	for _, e := range b.extents {
		if length == 0 {
			break
		}
		if off >= pos+e.length {
			pos += e.length
			continue
		}
		start := off - pos
		if start < 0 {
			start = 0
		}
		n := e.length - start
		if n > length {
			n = length
		}
		buf := make([]byte, n)
		if err := s.dev.ReadAt(buf, e.off+start); err != nil {
			return nil, err
		}
		out = append(out, buf...)
		off += n
		length -= n
		pos += e.length
	}
	if length != 0 {
		return nil, fmt.Errorf("xstore: short read, %d bytes missing", length)
	}
	return out, nil
}

// Size reports the size of the named blob.
func (s *Store) Size(name string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[name]
	if !ok {
		return 0, fmt.Errorf("%w: blob %q", ErrNotFound, name)
	}
	return b.size, nil
}

// Delete removes the named blob. Snapshots referencing it are unaffected:
// the extents stay in the log.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[name]; !ok {
		return fmt.Errorf("%w: blob %q", ErrNotFound, name)
	}
	s.seq++
	delete(s.blobs, name)
	return nil
}

// Exists reports whether the named blob exists.
func (s *Store) Exists(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.blobs[name]
	return ok
}

// List returns the names of blobs with the given prefix, sorted.
func (s *Store) List(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for n := range s.blobs {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Snapshot freezes the current blob namespace under the given snapshot
// name. It is a metadata-only operation: no data moves, regardless of how
// many terabytes the blobs hold (§3.5, §4.7).
func (s *Store) Snapshot(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	snap := &snapshot{seq: s.seq, taken: time.Now(), blobs: make(map[string]*blobMeta, len(s.blobs))}
	for n, b := range s.blobs {
		snap.blobs[n] = b.clone()
	}
	s.snapshots[name] = snap
	s.metrics.Counter("xstore.snapshot.count").Inc()
	return nil
}

// SnapshotInfo reports a snapshot's logical sequence and wall-clock time.
func (s *Store) SnapshotInfo(name string) (seq uint64, taken time.Time, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.snapshots[name]
	if !ok {
		return 0, time.Time{}, fmt.Errorf("%w: snapshot %q", ErrNotFound, name)
	}
	return snap.seq, snap.taken, nil
}

// Snapshots lists snapshot names sorted by logical time.
func (s *Store) Snapshots() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.snapshots))
	for n := range s.snapshots {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return s.snapshots[names[i]].seq < s.snapshots[names[j]].seq
	})
	return names
}

// DeleteSnapshot removes a snapshot (its extents stay until Compact).
func (s *Store) DeleteSnapshot(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.snapshots[name]; !ok {
		return fmt.Errorf("%w: snapshot %q", ErrNotFound, name)
	}
	delete(s.snapshots, name)
	return nil
}

// Restore materializes the blobs captured by the snapshot as new live blobs
// named dstPrefix+originalName. Like Snapshot, this is a constant-time
// metadata copy — the restored blobs alias the snapshotted extents, which is
// what lets a PITR of a 100 TB database start in minutes (§4.7).
func (s *Store) Restore(snapName, dstPrefix string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.snapshots[snapName]
	if !ok {
		return fmt.Errorf("%w: snapshot %q", ErrNotFound, snapName)
	}
	s.seq++
	for n, b := range snap.blobs {
		nb := b.clone()
		nb.modSeq = s.seq
		s.blobs[dstPrefix+n] = nb
	}
	return nil
}

// GetFromSnapshot reads a blob's contents as of the snapshot.
func (s *Store) GetFromSnapshot(snapName, blobName string) ([]byte, error) {
	s.mu.Lock()
	snap, ok := s.snapshots[snapName]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: snapshot %q", ErrNotFound, snapName)
	}
	b, ok := snap.blobs[blobName]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: blob %q in snapshot %q", ErrNotFound, blobName, snapName)
	}
	meta := b.clone()
	s.mu.Unlock()
	return s.readMeta(meta, 0, meta.size)
}

// ListFromSnapshot lists blob names in a snapshot with the prefix, sorted.
func (s *Store) ListFromSnapshot(snapName, prefix string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.snapshots[snapName]
	if !ok {
		return nil, fmt.Errorf("%w: snapshot %q", ErrNotFound, snapName)
	}
	var names []string
	for n := range snap.blobs {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// LiveBytes reports bytes reachable from live blobs (not snapshots).
func (s *Store) LiveBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, b := range s.blobs {
		total += b.size
	}
	return total
}

// LogBytes reports the total size of the append log, including garbage.
func (s *Store) LogBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.head
}

// Compact rewrites all live data (current blobs and every snapshot's blobs)
// into a fresh log, dropping unreferenced extents. This models the LT blob
// cleanup job (§4.3). It is an O(live data) background task.
func (s *Store) Compact() error {
	// Phase 1: under the lock, capture every blob version to keep.
	s.mu.Lock()
	type item struct {
		meta  *blobMeta
		apply func(ext extent)
	}
	var items []item
	for _, b := range s.blobs {
		b := b
		items = append(items, item{meta: b.clone(), apply: func(ext extent) {
			b.extents = []extent{ext}
		}})
	}
	for _, snap := range s.snapshots {
		for _, b := range snap.blobs {
			b := b
			items = append(items, item{meta: b.clone(), apply: func(ext extent) {
				b.extents = []extent{ext}
			}})
		}
	}
	s.mu.Unlock()

	// Phase 2: read each version and rewrite it contiguously. Concurrent
	// writers keep appending beyond the captured head; their extents are
	// untouched. We rewrite into the existing log head (append), then drop
	// nothing physically — the simulated device reclaims space via
	// Truncate only when the store is otherwise idle, which tests arrange.
	for _, it := range items {
		data, err := s.readMeta(it.meta, 0, it.meta.size)
		if err != nil {
			return err
		}
		ext, err := s.appendLog(data)
		if err != nil {
			return err
		}
		s.mu.Lock()
		it.apply(ext)
		s.mu.Unlock()
	}
	return nil
}
