package page

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := &Page{ID: 42, LSN: 1000, Type: TypeLeaf, Data: []byte("row data")}
	buf, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != Size {
		t.Fatalf("image size = %d, want %d", len(buf), Size)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != p.ID || got.LSN != p.LSN || got.Type != p.Type || !bytes.Equal(got.Data, p.Data) {
		t.Fatalf("decoded %+v, want %+v", got, p)
	}
}

func TestEncodeEmptyPayload(t *testing.T) {
	p := New(7, TypeMeta)
	buf, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != 0 || got.ID != 7 || got.Type != TypeMeta {
		t.Fatalf("decoded %+v", got)
	}
}

func TestEncodeMaxPayload(t *testing.T) {
	p := &Page{ID: 1, Type: TypeLeaf, Data: make([]byte, MaxData)}
	if _, err := p.Encode(); err != nil {
		t.Fatalf("max payload should encode: %v", err)
	}
	p.Data = make([]byte, MaxData+1)
	if _, err := p.Encode(); !errors.Is(err, ErrTooLarge) {
		t.Fatal("oversized payload should fail")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	p := &Page{ID: 9, LSN: 5, Type: TypeLeaf, Data: []byte("abcdef")}
	buf, _ := p.Encode()

	flipped := append([]byte(nil), buf...)
	flipped[HeaderSize+2] ^= 0xFF // corrupt payload
	if _, err := Decode(flipped); !errors.Is(err, ErrChecksum) {
		t.Fatalf("payload corruption: err = %v, want ErrChecksum", err)
	}

	flipped = append([]byte(nil), buf...)
	flipped[5] ^= 0xFF // corrupt page ID in header
	if _, err := Decode(flipped); !errors.Is(err, ErrChecksum) {
		t.Fatalf("header corruption: err = %v, want ErrChecksum", err)
	}

	flipped = append([]byte(nil), buf...)
	flipped[0] = 0 // break magic
	if _, err := Decode(flipped); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: err = %v, want ErrBadMagic", err)
	}

	if _, err := Decode(buf[:100]); err == nil {
		t.Fatal("short buffer should fail")
	}
}

func TestDecodeRejectsOversizedDeclaredLength(t *testing.T) {
	p := &Page{ID: 1, Type: TypeLeaf, Data: []byte("x")}
	buf, _ := p.Encode()
	buf[22] = 0xFF
	buf[23] = 0xFF // declared length 65535 > MaxData
	if _, err := Decode(buf); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestPeekLSN(t *testing.T) {
	p := &Page{ID: 3, LSN: 77, Type: TypeLeaf}
	buf, _ := p.Encode()
	lsn, err := PeekLSN(buf)
	if err != nil || lsn != 77 {
		t.Fatalf("peek = %d, %v", lsn, err)
	}
	if _, err := PeekLSN([]byte{1, 2}); err == nil {
		t.Fatal("short peek should fail")
	}
	buf[0] = 0
	if _, err := PeekLSN(buf); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestClone(t *testing.T) {
	p := &Page{ID: 1, LSN: 2, Type: TypeLeaf, Data: []byte("shared?")}
	c := p.Clone()
	c.Data[0] = 'X'
	c.LSN = 99
	if p.Data[0] != 's' || p.LSN != 2 {
		t.Fatal("clone is not deep")
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeFree: "free", TypeMeta: "meta", TypeInternal: "internal",
		TypeLeaf: "leaf", TypeVersion: "version", Type(99): "type(99)",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
}

// Property: Encode/Decode round-trips arbitrary pages.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(id uint64, lsn uint64, ty uint8, data []byte) bool {
		if len(data) > MaxData {
			data = data[:MaxData]
		}
		p := &Page{ID: ID(id), LSN: LSN(lsn), Type: Type(ty % 5), Data: data}
		buf, err := p.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return got.ID == p.ID && got.LSN == p.LSN && got.Type == p.Type &&
			bytes.Equal(got.Data, p.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-bit flip in a nonempty image is detected.
func TestChecksumDetectsBitFlips(t *testing.T) {
	p := &Page{ID: 123, LSN: 456, Type: TypeLeaf, Data: []byte("sensitive row payload")}
	buf, _ := p.Encode()
	limit := HeaderSize + len(p.Data)
	for i := 0; i < limit; i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), buf...)
			mut[i] ^= 1 << bit
			if _, err := Decode(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d undetected", i, bit)
			}
		}
	}
}

func TestPartitioning(t *testing.T) {
	pt := Partitioning{PagesPerPartition: 100}
	if pt.PartitionOf(0) != 0 || pt.PartitionOf(99) != 0 {
		t.Fatal("pages 0-99 should be partition 0")
	}
	if pt.PartitionOf(100) != 1 || pt.PartitionOf(250) != 2 {
		t.Fatal("partition boundaries wrong")
	}
	lo, hi := pt.Range(2)
	if lo != 200 || hi != 300 {
		t.Fatalf("range(2) = [%d,%d)", lo, hi)
	}
	if n := pt.Partitions(250); n != 3 {
		t.Fatalf("partitions(250) = %d, want 3", n)
	}
	if n := pt.Partitions(0); n != 1 {
		t.Fatalf("partitions(0) = %d, want 1", n)
	}
}

func TestPartitioningZeroIsSinglePartition(t *testing.T) {
	pt := Partitioning{}
	if pt.PartitionOf(12345) != 0 {
		t.Fatal("zero partitioning should map everything to partition 0")
	}
	if pt.Partitions(12345) != 1 {
		t.Fatal("zero partitioning should report one partition")
	}
}

// Property: every page falls inside the range its partition reports.
func TestPartitionRangeProperty(t *testing.T) {
	f := func(id uint32, per uint16) bool {
		if per == 0 {
			return true
		}
		pt := Partitioning{PagesPerPartition: uint64(per)}
		part := pt.PartitionOf(ID(id))
		lo, hi := pt.Range(part)
		return ID(id) >= lo && ID(id) < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
