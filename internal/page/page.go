// Package page defines the on-disk page format shared by every tier of the
// Socrates stack: compute-node buffer pools, RBPEX caches, page servers, and
// the checkpoint files in XStore all traffic in these 8 KiB pages.
//
// A page carries its own LSN (the LSN of the last log record applied to it),
// which is the linchpin of the GetPage@LSN protocol (§4.4): redo is
// idempotent because a record is applied only when record.LSN > page.LSN,
// and a reader can demand a page "at least as new as" a given LSN.
//
// The package also defines the range partitioning that assigns pages to
// page servers (§4.6): partition k owns pages [k*PagesPerPartition,
// (k+1)*PagesPerPartition).
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Size is the fixed page size in bytes, matching SQL Server's 8 KiB pages.
const Size = 8192

// HeaderSize is the number of bytes of header preceding the payload.
const HeaderSize = 32

// MaxData is the payload capacity of a page.
const MaxData = Size - HeaderSize

const magic = 0x50C7A7E5 // "SOCRATES"

// ID identifies a page within a database. IDs are dense and allocated by
// the primary's space manager.
type ID uint64

// InvalidID is the zero, never-allocated page ID.
const InvalidID ID = 0

// LSN is a log sequence number. The primary allocates LSNs from a single
// monotonic space; a page's LSN records the last change applied to it.
//
// Every tier of the stack orders itself by LSN watermarks (hardened,
// promoted, destaged, applied), so ordering and arithmetic on LSNs go
// through the methods below rather than raw operators: the lsnlint pass in
// internal/analysis flags raw `lsn+1` / `a < b` expressions outside
// approved helpers, which keeps the monotonicity invariant auditable in
// one place.
type LSN uint64

// Uint64 returns the LSN as a raw integer for serialization.
func (l LSN) Uint64() uint64 { return uint64(l) }

// Next returns the LSN immediately after l (the next record slot).
func (l LSN) Next() LSN { return l + 1 }

// Prev returns the LSN immediately before l; the zero LSN has no
// predecessor and maps to itself.
func (l LSN) Prev() LSN {
	if l == 0 {
		return 0
	}
	return l - 1
}

// Add advances l by n slots.
func (l LSN) Add(n uint64) LSN { return l + LSN(n) }

// Before reports l < o.
func (l LSN) Before(o LSN) bool { return l < o }

// AtMost reports l <= o.
func (l LSN) AtMost(o LSN) bool { return l <= o }

// After reports l > o.
func (l LSN) After(o LSN) bool { return l > o }

// AtLeast reports l >= o.
func (l LSN) AtLeast(o LSN) bool { return l >= o }

// Distance reports how many slots separate from (inclusive) and l
// (exclusive); it is 0 when l precedes from.
func (l LSN) Distance(from LSN) uint64 {
	if l < from {
		return 0
	}
	return uint64(l - from)
}

// MaxLSN returns the later of a and b.
func MaxLSN(a, b LSN) LSN {
	if a.Before(b) {
		return b
	}
	return a
}

// MinLSN returns the earlier of a and b.
func MinLSN(a, b LSN) LSN {
	if a.Before(b) {
		return a
	}
	return b
}

// Type tags what a page stores.
type Type uint8

// Page types.
const (
	TypeFree     Type = iota // unallocated
	TypeMeta                 // database/system catalog page
	TypeInternal             // B-tree interior node
	TypeLeaf                 // B-tree leaf node
	TypeVersion              // version-store page
)

func (t Type) String() string {
	switch t {
	case TypeFree:
		return "free"
	case TypeMeta:
		return "meta"
	case TypeInternal:
		return "internal"
	case TypeLeaf:
		return "leaf"
	case TypeVersion:
		return "version"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// ErrChecksum reports a torn or corrupted page image.
var ErrChecksum = errors.New("page: checksum mismatch")

// ErrBadMagic reports a buffer that is not a page image.
var ErrBadMagic = errors.New("page: bad magic")

// ErrTooLarge reports a payload exceeding MaxData.
var ErrTooLarge = errors.New("page: payload too large")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksum covers the whole header (except the checksum field itself) plus
// the first n payload bytes, so any bit flip in a page image is detected.
func checksum(buf []byte, n int) uint32 {
	sum := crc32.Checksum(buf[0:24], crcTable)
	sum = crc32.Update(sum, crcTable, buf[28:32])
	return crc32.Update(sum, crcTable, buf[HeaderSize:HeaderSize+n])
}

// Page is the in-memory representation of one database page.
type Page struct {
	ID   ID
	LSN  LSN
	Type Type
	Data []byte // payload, at most MaxData bytes
}

// New returns an empty page of the given type.
func New(id ID, t Type) *Page {
	return &Page{ID: id, Type: t}
}

// Clone returns a deep copy.
func (p *Page) Clone() *Page {
	c := *p
	c.Data = append([]byte(nil), p.Data...)
	return &c
}

// Encode serializes the page into a fresh Size-byte image with checksum.
//
// Layout (little endian):
//
//	[0:4)   magic
//	[4:12)  page ID
//	[12:20) page LSN
//	[20:21) type
//	[21:22) reserved
//	[22:24) payload length
//	[24:28) checksum (crc32c over bytes [0:24) with this field zeroed, plus payload)
//	[28:32) reserved
//	[32:..) payload
func (p *Page) Encode() ([]byte, error) {
	return p.AppendEncode(make([]byte, 0, Size))
}

// zeroImage is the blank page image AppendEncode extends dst with before
// encoding in place (appending from a package-level array allocates
// nothing when dst has capacity).
var zeroImage [Size]byte

// AppendEncode appends the page's Size-byte image to dst and returns the
// extended slice — the allocation-free form of Encode for callers
// assembling multi-page payloads (the GetPageRange response) into one
// reusable buffer.
//
//socrates:hotpath one call per page served; the payload buffer is the caller's
//socrates:alloc-ok the append amortizes into the caller's payload buffer
func (p *Page) AppendEncode(dst []byte) ([]byte, error) {
	if len(p.Data) > MaxData {
		return dst, fmt.Errorf("%w: %d bytes on page %d", ErrTooLarge, len(p.Data), p.ID)
	}
	off := len(dst)
	dst = append(dst, zeroImage[:]...)
	buf := dst[off : off+Size]
	binary.LittleEndian.PutUint32(buf[0:4], magic)
	binary.LittleEndian.PutUint64(buf[4:12], uint64(p.ID))
	binary.LittleEndian.PutUint64(buf[12:20], uint64(p.LSN))
	buf[20] = byte(p.Type)
	binary.LittleEndian.PutUint16(buf[22:24], uint16(len(p.Data)))
	copy(buf[HeaderSize:], p.Data)
	binary.LittleEndian.PutUint32(buf[24:28], checksum(buf, len(p.Data)))
	return dst, nil
}

// Decode parses and verifies a page image produced by Encode.
func Decode(buf []byte) (*Page, error) {
	if len(buf) != Size {
		return nil, fmt.Errorf("page: image is %d bytes, want %d", len(buf), Size)
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != magic {
		return nil, ErrBadMagic
	}
	n := int(binary.LittleEndian.Uint16(buf[22:24]))
	if n > MaxData {
		return nil, fmt.Errorf("%w: declared payload %d", ErrTooLarge, n)
	}
	want := binary.LittleEndian.Uint32(buf[24:28])
	if checksum(buf, n) != want {
		return nil, fmt.Errorf("%w on page %d", ErrChecksum,
			binary.LittleEndian.Uint64(buf[4:12]))
	}
	p := &Page{
		ID:   ID(binary.LittleEndian.Uint64(buf[4:12])),
		LSN:  LSN(binary.LittleEndian.Uint64(buf[12:20])),
		Type: Type(buf[20]),
		Data: append([]byte(nil), buf[HeaderSize:HeaderSize+n]...),
	}
	return p, nil
}

// PeekLSN extracts the LSN from an encoded image without full decoding.
func PeekLSN(buf []byte) (LSN, error) {
	if len(buf) < 20 {
		return 0, fmt.Errorf("page: image too short")
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != magic {
		return 0, ErrBadMagic
	}
	return LSN(binary.LittleEndian.Uint64(buf[12:20])), nil
}

// PartitionID identifies a page-server partition.
type PartitionID uint32

// Partitioning maps pages to page-server partitions by dense ranges.
// The paper sizes partitions at 128 GB (§6); experiments here scale the
// page count down while preserving the range-partitioned structure.
type Partitioning struct {
	// PagesPerPartition is the number of pages each partition owns.
	PagesPerPartition uint64
}

// PartitionOf reports which partition owns the page.
func (pt Partitioning) PartitionOf(id ID) PartitionID {
	if pt.PagesPerPartition == 0 {
		return 0
	}
	return PartitionID(uint64(id) / pt.PagesPerPartition)
}

// Range reports the page range [lo, hi) owned by a partition.
func (pt Partitioning) Range(part PartitionID) (lo, hi ID) {
	lo = ID(uint64(part) * pt.PagesPerPartition)
	hi = lo + ID(pt.PagesPerPartition)
	return lo, hi
}

// Partitions reports how many partitions cover pages [0, maxPage].
func (pt Partitioning) Partitions(maxPage ID) int {
	if pt.PagesPerPartition == 0 {
		return 1
	}
	return int(uint64(maxPage)/pt.PagesPerPartition) + 1
}
