package socrates

import (
	"fmt"
	"testing"
	"time"
)

func openFast(t *testing.T, cfg Config) *DB {
	t.Helper()
	cfg.Fast = true
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func TestOpenExecClose(t *testing.T) {
	db := openFast(t, Config{Name: "api1"})
	if _, err := db.Exec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 'hello'), (2, 'world')`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT v FROM t ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].S != "hello" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSQLSurvivesFailover(t *testing.T) {
	db := openFast(t, Config{Name: "api2"})
	if _, err := db.Exec(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 42)`); err != nil {
		t.Fatal(err)
	}
	d, err := db.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if d > 30*time.Second {
		t.Fatalf("failover took %v", d)
	}
	res, err := db.Exec(`SELECT v FROM t WHERE id = 1`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 42 {
		t.Fatalf("post-failover: %v %v", res, err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (2, 43)`); err != nil {
		t.Fatal(err)
	}
}

func TestReadSessionOnSecondary(t *testing.T) {
	db := openFast(t, Config{Name: "api3", Secondaries: 1})
	if _, err := db.Exec(`CREATE TABLE t (id INT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (7)`); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitForReplication(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	names := db.Secondaries()
	if len(names) != 1 {
		t.Fatalf("secondaries = %v", names)
	}
	sess, err := db.ReadSession(names[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec(`SELECT COUNT(*) FROM t`)
	if err != nil || res.Rows[0][0].I != 1 {
		t.Fatalf("secondary read: %v %v", res, err)
	}
	// Writes on a secondary session fail.
	if _, err := sess.Exec(`INSERT INTO t VALUES (8)`); err == nil {
		t.Fatal("write on secondary accepted")
	}
	if _, err := db.ReadSession("ghost"); err == nil {
		t.Fatal("session on unknown secondary accepted")
	}
}

func TestBackupAndRestoreAPI(t *testing.T) {
	db := openFast(t, Config{Name: "api4"})
	if _, err := db.Exec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 'keep')`); err != nil {
		t.Fatal(err)
	}
	if err := db.Backup("daily"); err != nil {
		t.Fatal(err)
	}
	mark := db.BackupLSN()
	if _, err := db.Exec(`DELETE FROM t WHERE id = 1`); err != nil {
		t.Fatal(err)
	}

	restored, err := db.PointInTimeRestore("daily", mark)
	if err != nil {
		t.Fatal(err)
	}
	res, err := restored.Exec(`SELECT v FROM t WHERE id = 1`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "keep" {
		t.Fatalf("restored: %v %v", res, err)
	}
	if _, err := db.PointInTimeRestore("nope", 0); !IsNoBackup(err) {
		t.Fatalf("unknown backup: %v", err)
	}
}

func TestKVAndStats(t *testing.T) {
	db := openFast(t, Config{Name: "api5", CacheMemPages: 4})
	eng := db.KV()
	if err := eng.CreateTable("raw"); err != nil {
		t.Fatal(err)
	}
	wide := make([]byte, 512)
	tx := eng.Begin()
	for i := 0; i < 500; i++ {
		if err := tx.Put("raw", []byte(fmt.Sprintf("k%04d", i)), wide); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// A full scan over a database much larger than the cache must fetch
	// pages from the page servers.
	count := 0
	if err := eng.BeginRO().Scan("raw", nil, nil, func(k, v []byte) bool {
		count++
		return true
	}); err != nil || count != 500 {
		t.Fatalf("scan: %d %v", count, err)
	}
	st := db.Stats()
	if st.HardenedLSN == 0 || st.LogBytes == 0 || st.PageServers == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.RemoteFetches == 0 {
		t.Fatal("tiny cache should have remote-fetched pages")
	}
}

func TestScaleWorkflowsViaAPI(t *testing.T) {
	db := openFast(t, Config{Name: "api6"})
	if _, err := db.Exec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		if _, err := s.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'row')`, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddSecondary("reader"); err != nil {
		t.Fatal(err)
	}
	if err := db.SplitPageServer(0); err != nil {
		t.Fatal(err)
	}
	if err := db.AddPageServerReplica(0); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT COUNT(*) FROM t`)
	if err != nil || res.Rows[0][0].I != 800 {
		t.Fatalf("after reshaping: %v %v", res, err)
	}
	if err := db.RemoveSecondary("reader"); err != nil {
		t.Fatal(err)
	}
}
