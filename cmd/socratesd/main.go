// Command socratesd runs a complete Socrates deployment as a server
// process: SQL over a line-based TCP protocol, plus the internal tiers
// (XLOG service and page servers) optionally exposed on RBIO/TCP so other
// processes can pull log blocks or issue GetPage@LSN — the same protocol
// the in-process fabric speaks.
//
// SQL protocol: one statement per line; the server replies with
// tab-separated rows terminated by a line "ok <rows> <affected>" or
// "error <message>".
//
//	$ socratesd -listen :5432 &
//	$ printf "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)\n" | nc localhost 5432
//
// With -tenants the server boots a multi-tenant front-door fleet
// instead of a single cluster: several elastic pools behind one router,
// the named tenants placed round-robin across them with per-tenant
// admission budgets. Statements are then addressed per line as
// "@tenant SQL" and routed through the router tier (placement cache,
// typed redirects, admission). The -obs plane serves the router's
// registry, so `socrates-top -addr` renders the per-tenant table.
//
//	$ socratesd -tenants alpha,beta -obs 127.0.0.1:7070 &
//	$ printf "@alpha CREATE TABLE t (id INT PRIMARY KEY, v TEXT)\n" | nc localhost 5432
//
// Flags select deployment shape (secondaries, page servers, landing-zone
// service, simulated-latency fidelity).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"socrates"
	"socrates/internal/frontdoor"
	"socrates/internal/obs"
	"socrates/internal/rbio"
	"socrates/internal/sqlengine"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5432", "SQL listen address")
	rbioListen := flag.String("rbio", "", "optional RBIO/TCP address exposing the XLOG service")
	name := flag.String("name", "db", "database name")
	secondaries := flag.Int("secondaries", 1, "secondary compute nodes")
	pageServers := flag.Int("pageservers", 1, "initial page servers")
	pagesPerPartition := flag.Uint64("partition-pages", 0, "pages per partition (0 = single partition)")
	lz := flag.String("lz", "xio", "landing-zone service: xio | directdrive")
	fast := flag.Bool("fast", false, "zero-latency devices (development)")
	obsAddr := flag.String("obs", "", "HTTP observability plane address (/metrics, /watermarks, /flight, /traces, /waits, /debug/pprof)")
	tenants := flag.String("tenants", "", "comma-separated tenant names; non-empty boots a multi-tenant front-door fleet (statements become '@tenant SQL')")
	pools := flag.Int("pools", 2, "elastic pools in the fleet (multi-tenant mode)")
	admitRate := flag.Float64("admit-rate", 0, "per-tenant admission budget, ops/sec (0 = unlimited; multi-tenant mode)")
	admitBurst := flag.Float64("admit-burst", 0, "per-tenant admission burst (multi-tenant mode)")
	flag.Parse()

	if *tenants != "" {
		runFleet(*listen, *obsAddr, strings.Split(*tenants, ","), *pools, *admitRate, *admitBurst)
		return
	}

	cfg := socrates.Config{
		Name:              *name,
		Secondaries:       *secondaries,
		PageServers:       *pageServers,
		PagesPerPartition: *pagesPerPartition,
		Fast:              *fast,
	}
	switch strings.ToLower(*lz) {
	case "xio":
		cfg.LZ = socrates.XIO
	case "directdrive", "dd":
		cfg.LZ = socrates.DirectDrive
	default:
		log.Fatalf("unknown landing-zone service %q", *lz)
	}

	db, err := socrates.Open(cfg)
	if err != nil {
		log.Fatalf("starting deployment: %v", err)
	}
	defer db.Close()
	log.Printf("socratesd: %q up (lz=%s secondaries=%d pageservers=%d)",
		*name, *lz, *secondaries, *pageServers)

	if *obsAddr != "" {
		osrv, err := db.ServeObservability(*obsAddr)
		if err != nil {
			log.Fatalf("observability listener: %v", err)
		}
		defer osrv.Close()
		log.Printf("socratesd: observability plane on http://%s (try /metrics, /watermarks, /flight, /waits)", osrv.Addr())
	}

	if *rbioListen != "" {
		srv, err := rbio.ServeTCP(*rbioListen, db.Cluster().XLOG.Handler())
		if err != nil {
			log.Fatalf("rbio listener: %v", err)
		}
		defer srv.Close()
		log.Printf("socratesd: XLOG service on rbio/tcp %s", srv.Addr())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("sql listener: %v", err)
	}
	defer ln.Close()
	log.Printf("socratesd: SQL on tcp %s", ln.Addr())

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("socratesd: shutting down")
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go serveConn(db, conn)
	}
}

// serveConn runs one SQL session over a TCP connection.
func serveConn(db *socrates.DB, conn net.Conn) {
	defer conn.Close()
	sess := db.Session()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	out := bufio.NewWriter(conn)
	defer out.Flush()
	for sc.Scan() {
		stmt := strings.TrimSpace(sc.Text())
		if stmt == "" {
			continue
		}
		if strings.EqualFold(stmt, "quit") || strings.EqualFold(stmt, "exit") {
			return
		}
		res, err := sess.Exec(stmt)
		if err != nil {
			fmt.Fprintf(out, "error %v\n", err)
			out.Flush()
			continue
		}
		writeResult(out, res)
	}
}

// writeResult writes one statement's reply in the line protocol:
// tab-separated rows, then the "ok <rows> <affected>" terminator.
func writeResult(out *bufio.Writer, res *sqlengine.Result) {
	if len(res.Columns) > 0 {
		fmt.Fprintln(out, strings.Join(res.Columns, "\t"))
	}
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Fprintln(out, strings.Join(parts, "\t"))
	}
	fmt.Fprintf(out, "ok %d %d\n", len(res.Rows), res.Affected)
	out.Flush()
}

// runFleet is the multi-tenant mode: a front-door fleet (pools behind
// one router) serving the same line protocol with per-line tenant
// addressing, and an observability plane over the router's registry.
func runFleet(listen, obsAddr string, tenants []string, pools int, admitRate, admitBurst float64) {
	for i, t := range tenants {
		tenants[i] = strings.TrimSpace(t)
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	f, err := frontdoor.NewFleet(frontdoor.FleetConfig{
		Clusters:       pools,
		Tenants:        tenants,
		AdmissionRate:  admitRate,
		AdmissionBurst: admitBurst,
		Seed:           1,
		Tracer:         tracer,
		Metrics:        reg,
	})
	if err != nil {
		log.Fatalf("starting fleet: %v", err)
	}
	defer f.Close()
	log.Printf("socratesd: fleet up (pools=%d tenants=%v admit=%g/s)", pools, tenants, admitRate)

	if obsAddr != "" {
		osrv, err := obs.Serve(obsAddr, obs.NewHTTPHandler(obs.PlaneOptions{
			Registry: reg,
			Tracer:   tracer,
		}))
		if err != nil {
			log.Fatalf("observability listener: %v", err)
		}
		defer osrv.Close()
		log.Printf("socratesd: router observability plane on http://%s (frontdoor.tenant.* series; try socrates-top -addr)", osrv.Addr())
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatalf("sql listener: %v", err)
	}
	defer ln.Close()
	log.Printf("socratesd: SQL on tcp %s (address statements as '@tenant SQL')", ln.Addr())

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("socratesd: shutting down")
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go serveFleetConn(f, conn)
	}
}

// serveFleetConn runs one SQL session against the fleet: every line is
// "@tenant SQL", routed through the front door (placement cache, typed
// redirects, per-tenant admission).
func serveFleetConn(f *frontdoor.Fleet, conn net.Conn) {
	defer conn.Close()
	ctx := context.Background()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	out := bufio.NewWriter(conn)
	defer out.Flush()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit") {
			return
		}
		if !strings.HasPrefix(line, "@") {
			fmt.Fprintln(out, "error multi-tenant mode: address statements as '@tenant SQL'")
			out.Flush()
			continue
		}
		tenant, stmt, _ := strings.Cut(line[1:], " ")
		stmt = strings.TrimSpace(stmt)
		if tenant == "" || stmt == "" {
			fmt.Fprintln(out, "error multi-tenant mode: address statements as '@tenant SQL'")
			out.Flush()
			continue
		}
		res, err := f.Router.ExecContext(ctx, tenant, stmt)
		if err != nil {
			fmt.Fprintf(out, "error %v\n", err)
			out.Flush()
			continue
		}
		writeResult(out, res)
	}
}
