// Command socratesd runs a complete Socrates deployment as a server
// process: SQL over a line-based TCP protocol, plus the internal tiers
// (XLOG service and page servers) optionally exposed on RBIO/TCP so other
// processes can pull log blocks or issue GetPage@LSN — the same protocol
// the in-process fabric speaks.
//
// SQL protocol: one statement per line; the server replies with
// tab-separated rows terminated by a line "ok <rows> <affected>" or
// "error <message>".
//
//	$ socratesd -listen :5432 &
//	$ printf "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)\n" | nc localhost 5432
//
// Flags select deployment shape (secondaries, page servers, landing-zone
// service, simulated-latency fidelity).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"socrates"
	"socrates/internal/rbio"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5432", "SQL listen address")
	rbioListen := flag.String("rbio", "", "optional RBIO/TCP address exposing the XLOG service")
	name := flag.String("name", "db", "database name")
	secondaries := flag.Int("secondaries", 1, "secondary compute nodes")
	pageServers := flag.Int("pageservers", 1, "initial page servers")
	pagesPerPartition := flag.Uint64("partition-pages", 0, "pages per partition (0 = single partition)")
	lz := flag.String("lz", "xio", "landing-zone service: xio | directdrive")
	fast := flag.Bool("fast", false, "zero-latency devices (development)")
	obsAddr := flag.String("obs", "", "HTTP observability plane address (/metrics, /watermarks, /flight, /traces, /waits, /debug/pprof)")
	flag.Parse()

	cfg := socrates.Config{
		Name:              *name,
		Secondaries:       *secondaries,
		PageServers:       *pageServers,
		PagesPerPartition: *pagesPerPartition,
		Fast:              *fast,
	}
	switch strings.ToLower(*lz) {
	case "xio":
		cfg.LZ = socrates.XIO
	case "directdrive", "dd":
		cfg.LZ = socrates.DirectDrive
	default:
		log.Fatalf("unknown landing-zone service %q", *lz)
	}

	db, err := socrates.Open(cfg)
	if err != nil {
		log.Fatalf("starting deployment: %v", err)
	}
	defer db.Close()
	log.Printf("socratesd: %q up (lz=%s secondaries=%d pageservers=%d)",
		*name, *lz, *secondaries, *pageServers)

	if *obsAddr != "" {
		osrv, err := db.ServeObservability(*obsAddr)
		if err != nil {
			log.Fatalf("observability listener: %v", err)
		}
		defer osrv.Close()
		log.Printf("socratesd: observability plane on http://%s (try /metrics, /watermarks, /flight, /waits)", osrv.Addr())
	}

	if *rbioListen != "" {
		srv, err := rbio.ServeTCP(*rbioListen, db.Cluster().XLOG.Handler())
		if err != nil {
			log.Fatalf("rbio listener: %v", err)
		}
		defer srv.Close()
		log.Printf("socratesd: XLOG service on rbio/tcp %s", srv.Addr())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("sql listener: %v", err)
	}
	defer ln.Close()
	log.Printf("socratesd: SQL on tcp %s", ln.Addr())

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("socratesd: shutting down")
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go serveConn(db, conn)
	}
}

// serveConn runs one SQL session over a TCP connection.
func serveConn(db *socrates.DB, conn net.Conn) {
	defer conn.Close()
	sess := db.Session()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	out := bufio.NewWriter(conn)
	defer out.Flush()
	for sc.Scan() {
		stmt := strings.TrimSpace(sc.Text())
		if stmt == "" {
			continue
		}
		if strings.EqualFold(stmt, "quit") || strings.EqualFold(stmt, "exit") {
			return
		}
		res, err := sess.Exec(stmt)
		if err != nil {
			fmt.Fprintf(out, "error %v\n", err)
			out.Flush()
			continue
		}
		if len(res.Columns) > 0 {
			fmt.Fprintln(out, strings.Join(res.Columns, "\t"))
		}
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Fprintln(out, strings.Join(parts, "\t"))
		}
		fmt.Fprintf(out, "ok %d %d\n", len(res.Rows), res.Affected)
		out.Flush()
	}
}
