package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"socrates"
	"socrates/internal/frontdoor"
	"socrates/internal/obs"
)

// tenantView renders the front door's per-tenant table from the
// frontdoor.tenant.* series: request throughput since the previous
// refresh, latency quantiles, the dominant wait class, and the admission
// and redirect counters. It reads a plain registry snapshot, so the same
// view works embedded (a local fleet's registry) and remote (the
// /metrics.json document of a socratesd -tenants deployment).
type tenantView struct {
	prevTaken time.Time
	prevOps   map[string]uint64
}

func newTenantView() *tenantView {
	return &tenantView{prevOps: make(map[string]uint64)}
}

type tenantRow struct {
	ops, rejects, redirects uint64
	lat                     obs.HistSummary
	topWaitClass            string
	topWaitNS               uint64
}

const tenantPrefix = "frontdoor.tenant."

// tenantRows groups the snapshot's tenant-labeled series into one row
// per tenant. Snapshots without front-door series yield an empty map.
func tenantRows(snap obs.Snapshot) map[string]*tenantRow {
	rows := make(map[string]*tenantRow)
	get := func(t string) *tenantRow {
		r, ok := rows[t]
		if !ok {
			r = &tenantRow{}
			rows[t] = r
		}
		return r
	}
	for n, val := range snap.Counters {
		if !strings.HasPrefix(n, tenantPrefix) {
			continue
		}
		rest := strings.TrimPrefix(n, tenantPrefix)
		switch {
		case strings.HasSuffix(rest, ".ops"):
			get(strings.TrimSuffix(rest, ".ops")).ops = val
		case strings.HasSuffix(rest, ".rejects"):
			get(strings.TrimSuffix(rest, ".rejects")).rejects = val
		case strings.HasSuffix(rest, ".redirects"):
			get(strings.TrimSuffix(rest, ".redirects")).redirects = val
		default:
			if i := strings.Index(rest, ".wait."); i >= 0 {
				r := get(rest[:i])
				if val > r.topWaitNS {
					r.topWaitNS = val
					r.topWaitClass = rest[i+len(".wait."):]
				}
			}
		}
	}
	for n, h := range snap.Histograms {
		if strings.HasPrefix(n, tenantPrefix) && strings.HasSuffix(n, ".latency") {
			get(strings.TrimSuffix(strings.TrimPrefix(n, tenantPrefix), ".latency")).lat = h
		}
	}
	return rows
}

func (v *tenantView) render(snap obs.Snapshot) {
	rows := tenantRows(snap)
	if len(rows) == 0 {
		return
	}
	elapsed := snap.Taken.Sub(v.prevTaken)
	first := v.prevTaken.IsZero()
	v.prevTaken = snap.Taken

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TENANT\tOPS\tTPS\tP50\tP99\tTOP WAIT\tREJECTS\tREDIRECTS")
	for _, t := range sortedNames(rows) {
		r := rows[t]
		tps := ""
		if !first && elapsed > 0 {
			tps = fmt.Sprintf("%.0f", float64(r.ops-v.prevOps[t])/elapsed.Seconds())
		}
		v.prevOps[t] = r.ops
		topWait := "-"
		if r.topWaitClass != "" {
			topWait = fmt.Sprintf("%s %v", r.topWaitClass,
				time.Duration(r.topWaitNS).Round(time.Microsecond))
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%v\t%v\t%s\t%d\t%d\n",
			t, r.ops, tps, r.lat.P50, r.lat.P99, topWait, r.rejects, r.redirects)
	}
	w.Flush()
}

// runTenants is the embedded multi-tenant mode (-tenants N): it boots a
// small front-door fleet (two instant-profile pools, N tenants placed
// round-robin, a finite per-tenant admission budget), drives a skewed
// workload through the router — tenant t0 runs open-loop into its budget
// so the rejects column moves, the rest pace themselves under it — and,
// when the fleet has a second tenant, live-migrates the last tenant
// between the pools every few seconds so the redirect path shows up too.
func runTenants(n int, interval, duration time.Duration, once, jsonOut bool) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	f, err := frontdoor.NewFleet(frontdoor.FleetConfig{
		Clusters:       2,
		Tenants:        names,
		AdmissionRate:  150,
		AdmissionBurst: 25,
		Seed:           42,
		Tracer:         tracer,
		Metrics:        reg,
	})
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}
	defer f.Close()

	ctx := context.Background()
	for _, t := range names {
		if _, err := f.Router.ExecContext(ctx, t, `CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)`); err != nil {
			log.Fatalf("%s: create table: %v", t, err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for ti, t := range names {
		wg.Add(1)
		go func(ti int, t string) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				stmt := fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'row-%d')`, i, i)
				if i%4 == 3 {
					stmt = fmt.Sprintf(`SELECT v FROM kv WHERE id = %d`, i/2)
				}
				_, err := f.Router.ExecContext(ctx, t, stmt)
				switch {
				case err == nil:
				case errors.Is(err, socrates.ErrAdmission):
					// Over budget: back off like a real client instead of
					// hammering the door.
					time.Sleep(2 * time.Millisecond) //socrates:sleep-ok client backoff after admission rejection
				default:
					log.Printf("%s workload: %v", t, err)
					return
				}
				if ti != 0 {
					time.Sleep(5 * time.Millisecond) //socrates:sleep-ok paced tenants stay under their admission budget
				}
			}
		}(ti, t)
	}
	if n >= 2 {
		// Wander the last tenant between the pools so the placement
		// epoch bumps and routers chase it through typed redirects.
		wg.Add(1)
		go func() {
			defer wg.Done()
			mover := names[n-1]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-time.After(4 * time.Second):
				}
				// Round-robin placement homes the mover on pool
				// (n-1)%2, so start with the other pool.
				dst := fmt.Sprintf("h%d", (n+i)%2)
				if err := f.Migrate(ctx, mover, dst); err != nil {
					log.Printf("migrate %s -> %s: %v", mover, dst, err)
				}
			}
		}()
	}

	deadline := time.Time{}
	if duration > 0 {
		deadline = time.Now().Add(duration)
	}
	tv := newTenantView()
	for {
		//socrates:sleep-ok the refresh interval is the point of a top-style tool
		time.Sleep(interval)
		snap := reg.Snapshot()
		if jsonOut {
			fmt.Println(snap.JSON())
		} else {
			fmt.Printf("\n== socrates-top @ %s (%d tenants, 2 pools) ==\n",
				snap.Taken.Format("15:04:05.000"), n)
			tv.render(snap)
		}
		if once || (!deadline.IsZero() && time.Now().After(deadline)) {
			break
		}
	}
	close(stop)
	wg.Wait()
}
