// Command socrates-top is a "top" for a Socrates deployment: it opens an
// in-process cluster, drives a light OLTP workload, and periodically
// renders the per-tier metrics registry — commit-path and GetPage@LSN
// latency histograms for the compute, landing-zone, XLOG, page-server and
// XStore tiers — followed by the span tree of the most recent traced
// request.
//
//	$ socrates-top -interval 1s -duration 10s
//	TIER        METRIC                       COUNT      P50      P95      P99      MAX
//	compute     commit.latency                 412    1.1ms    2.3ms    3.0ms    4.2ms
//	lz          write.latency                  398    420µs    910µs    1.2ms    2.0ms
//	...
//
// With -once it prints a single snapshot and exits; with -json it emits
// the raw registry snapshot as JSON (one object per refresh) for piping
// into other tools.
//
// With -addr it attaches to a RUNNING deployment instead of opening its
// own: it polls the HTTP observability plane exposed by
// DB.ServeObservability (or socratesd -obs) at /metrics.json and renders
// the same table — "top" for a live server.
//
//	$ socratesd -fast -obs 127.0.0.1:7070 &
//	$ socrates-top -addr 127.0.0.1:7070
//
// With -tenants N it boots an embedded multi-tenant front-door fleet
// (two pools, N tenants, per-tenant admission budgets, a wandering
// tenant live-migrating between the pools) and renders the per-tenant
// router table — throughput, latency quantiles, dominant wait class,
// admission rejects, placement redirects. Attached to a socratesd
// -tenants deployment via -addr, the same table is derived from the
// polled frontdoor.tenant.* series.
//
//	$ socrates-top -tenants 4 -interval 1s
//	TENANT  OPS   TPS  P50     P99     TOP WAIT       REJECTS  REDIRECTS
//	t0      912   301  410µs   1.9ms   lz.harden 2s   184      0
//	...
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"socrates"
	"socrates/internal/obs"
)

func main() {
	interval := flag.Duration("interval", time.Second, "refresh interval")
	duration := flag.Duration("duration", 10*time.Second, "total run time (0 = until interrupted)")
	once := flag.Bool("once", false, "print one snapshot and exit")
	jsonOut := flag.Bool("json", false, "emit raw registry snapshots as JSON")
	trace := flag.Bool("trace", true, "print the latest request's span tree")
	waits := flag.Bool("waits", true, "print the wait-stats table (blocked time per tier and wait class, with per-refresh rates)")
	secondaries := flag.Int("secondaries", 1, "secondary compute nodes")
	pageServers := flag.Int("pageservers", 1, "initial page servers")
	fast := flag.Bool("fast", true, "zero-latency devices (set -fast=false for simulated Azure latencies)")
	addr := flag.String("addr", "", "attach to a running deployment's observability plane (host:port of socratesd -obs) instead of opening an in-process cluster")
	tenants := flag.Int("tenants", 0, "boot an embedded multi-tenant front-door fleet with N tenants and render the per-tenant router table instead of a single-tenant cluster")
	flag.Parse()

	if *addr != "" {
		pollRemote(*addr, *interval, *duration, *once, *jsonOut, *waits)
		return
	}
	if *tenants > 0 {
		runTenants(*tenants, *interval, *duration, *once, *jsonOut)
		return
	}

	db, err := socrates.Open(socrates.Config{
		Name:        "top",
		Secondaries: *secondaries,
		PageServers: *pageServers,
		Fast:        *fast,
	})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer db.Close()

	ctx := context.Background()
	if _, err := db.ExecContext(ctx, `CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)`); err != nil {
		log.Fatalf("create table: %v", err)
	}

	// Background workload: steady inserts and point reads so the
	// histograms have something to say.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			stmt := fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'row-%d')`, i, i)
			if i%4 == 3 {
				stmt = fmt.Sprintf(`SELECT v FROM kv WHERE id = %d`, i/2)
			}
			if _, err := db.ExecContext(ctx, stmt); err != nil {
				log.Printf("workload: %v", err)
				return
			}
		}
	}()

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	wv := newWaitsView()
	for {
		//socrates:sleep-ok the refresh interval is the point of a top-style tool
		time.Sleep(*interval)
		render(db, *jsonOut, *trace)
		if *waits && !*jsonOut {
			wv.render(db.WaitReport())
		}
		if *once || (!deadline.IsZero() && time.Now().After(deadline)) {
			break
		}
	}
	close(stop)
	<-done
}

// pollRemote renders snapshots polled from a running deployment's
// /metrics.json (and, with waits, /waits) endpoints (the -addr mode).
func pollRemote(addr string, interval, duration time.Duration, once, jsonOut, waits bool) {
	url := "http://" + addr + "/metrics.json"
	waitsURL := "http://" + addr + "/waits"
	deadline := time.Time{}
	if duration > 0 {
		deadline = time.Now().Add(duration)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	wv := newWaitsView()
	tv := newTenantView()
	for {
		body, err := fetch(client, url)
		if err != nil {
			log.Fatalf("polling %s: %v", url, err)
		}
		if jsonOut {
			os.Stdout.Write(body)
			fmt.Println()
		} else {
			var snap obs.Snapshot
			if err := json.Unmarshal(body, &snap); err != nil {
				log.Fatalf("decoding snapshot: %v", err)
			}
			renderSnapshot(snap)
			tv.render(snap)
			if waits {
				wbody, err := fetch(client, waitsURL)
				if err != nil {
					log.Fatalf("polling %s: %v", waitsURL, err)
				}
				var rep obs.WaitReport
				if err := json.Unmarshal(wbody, &rep); err != nil {
					log.Fatalf("decoding wait report: %v", err)
				}
				wv.render(rep)
			}
		}
		if once || (!deadline.IsZero() && time.Now().After(deadline)) {
			return
		}
		//socrates:sleep-ok the refresh interval is the point of a top-style tool
		time.Sleep(interval)
	}
}

// waitsView renders the wait-stats table: every tier/class sketch sorted
// by cumulative blocked time, with the rates observed since the previous
// refresh (waits begun per second, blocked time accumulated per second).
type waitsView struct {
	prevTaken time.Time
	prev      map[string]obs.WaitClassStat // "tier/class" → previous snapshot
}

func newWaitsView() *waitsView {
	return &waitsView{prev: make(map[string]obs.WaitClassStat)}
}

func (v *waitsView) render(rep obs.WaitReport) {
	elapsed := rep.Taken.Sub(v.prevTaken)
	first := v.prevTaken.IsZero()
	v.prevTaken = rep.Taken

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TIER\tWAIT\tCOUNT\tTOTAL\tMAX\tWAITS/S\tBLOCKED/S")
	row := func(tier string, st obs.WaitClassStat) {
		key := tier + "/" + st.Class
		rate, blocked := "", ""
		if !first && elapsed > 0 {
			p := v.prev[key]
			rate = fmt.Sprintf("%.0f", float64(st.Count-p.Count)/elapsed.Seconds())
			perSec := time.Duration(float64(st.TotalNS-p.TotalNS) / elapsed.Seconds())
			blocked = perSec.Round(time.Microsecond).String()
		}
		v.prev[key] = st
		fmt.Fprintf(w, "%s\t%s\t%d\t%v\t%v\t%s\t%s\n",
			tier, st.Class, st.Count,
			time.Duration(st.TotalNS).Round(time.Microsecond),
			time.Duration(st.MaxNS).Round(time.Microsecond),
			rate, blocked)
	}
	for _, st := range rep.Global {
		row("(all)", st)
	}
	for _, tier := range sortedNames(rep.Tiers) {
		for _, st := range rep.Tiers[tier] {
			row(tier, st)
		}
	}
	w.Flush()
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// renderSnapshot prints one raw registry snapshot as the per-tier table
// (the -addr mode's renderer; tier = metric-name prefix).
func renderSnapshot(snap obs.Snapshot) {
	fmt.Printf("\n== socrates-top @ %s (remote) ==\n", snap.Taken.Format("15:04:05.000"))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "METRIC\tCOUNT\tP50\tP95\tP99\tMAX")
	for _, n := range sortedNames(snap.Histograms) {
		h := snap.Histograms[n]
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%v\n", n, h.Count, h.P50, h.P95, h.P99, h.Max)
	}
	for _, n := range sortedNames(snap.Counters) {
		fmt.Fprintf(w, "%s\t%d\t\t\t\t\n", n, snap.Counters[n])
	}
	for _, n := range sortedNames(snap.Gauges) {
		fmt.Fprintf(w, "%s\t%d\t\t\t\t\n", n, snap.Gauges[n])
	}
	w.Flush()
}

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func render(db *socrates.DB, jsonOut, withTrace bool) {
	snap := db.MetricsSnapshot()
	if jsonOut {
		fmt.Println(db.Cluster().Metrics.Snapshot().JSON())
		return
	}
	fmt.Printf("\n== socrates-top @ %s ==\n", snap.Taken.Format("15:04:05.000"))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TIER\tMETRIC\tCOUNT\tP50\tP95\tP99\tMAX")
	for _, t := range []struct {
		label string
		tm    socrates.TierMetrics
	}{
		{"compute", snap.Compute},
		{"lz", snap.LandingZone},
		{"xlog", snap.XLOG},
		{"pageserver", snap.PageServer},
		{"xstore", snap.XStore},
	} {
		names := make([]string, 0, len(t.tm.Histograms))
		for n := range t.tm.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h := t.tm.Histograms[n]
			fmt.Fprintf(w, "%s\t%s\t%d\t%v\t%v\t%v\t%v\n",
				t.label, n, h.Count, h.P50, h.P95, h.P99, h.Max)
		}
		cnames := make([]string, 0, len(t.tm.Counters))
		for n := range t.tm.Counters {
			cnames = append(cnames, n)
		}
		sort.Strings(cnames)
		for _, n := range cnames {
			fmt.Fprintf(w, "%s\t%s\t%d\t\t\t\t\n", t.label, n, t.tm.Counters[n])
		}
	}
	w.Flush()
	if withTrace {
		if tr := db.LastTrace(); tr != nil {
			fmt.Printf("-- latest trace (tiers: %v) --\n%s", tr.Tiers(), tr.Format())
		}
	}
}
