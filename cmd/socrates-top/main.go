// Command socrates-top is a "top" for a Socrates deployment: it opens an
// in-process cluster, drives a light OLTP workload, and periodically
// renders the per-tier metrics registry — commit-path and GetPage@LSN
// latency histograms for the compute, landing-zone, XLOG, page-server and
// XStore tiers — followed by the span tree of the most recent traced
// request.
//
//	$ socrates-top -interval 1s -duration 10s
//	TIER        METRIC                       COUNT      P50      P95      P99      MAX
//	compute     commit.latency                 412    1.1ms    2.3ms    3.0ms    4.2ms
//	lz          write.latency                  398    420µs    910µs    1.2ms    2.0ms
//	...
//
// With -once it prints a single snapshot and exits; with -json it emits
// the raw registry snapshot as JSON (one object per refresh) for piping
// into other tools.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"socrates"
)

func main() {
	interval := flag.Duration("interval", time.Second, "refresh interval")
	duration := flag.Duration("duration", 10*time.Second, "total run time (0 = until interrupted)")
	once := flag.Bool("once", false, "print one snapshot and exit")
	jsonOut := flag.Bool("json", false, "emit raw registry snapshots as JSON")
	trace := flag.Bool("trace", true, "print the latest request's span tree")
	secondaries := flag.Int("secondaries", 1, "secondary compute nodes")
	pageServers := flag.Int("pageservers", 1, "initial page servers")
	fast := flag.Bool("fast", true, "zero-latency devices (set -fast=false for simulated Azure latencies)")
	flag.Parse()

	db, err := socrates.Open(socrates.Config{
		Name:        "top",
		Secondaries: *secondaries,
		PageServers: *pageServers,
		Fast:        *fast,
	})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer db.Close()

	ctx := context.Background()
	if _, err := db.ExecContext(ctx, `CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)`); err != nil {
		log.Fatalf("create table: %v", err)
	}

	// Background workload: steady inserts and point reads so the
	// histograms have something to say.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			stmt := fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'row-%d')`, i, i)
			if i%4 == 3 {
				stmt = fmt.Sprintf(`SELECT v FROM kv WHERE id = %d`, i/2)
			}
			if _, err := db.ExecContext(ctx, stmt); err != nil {
				log.Printf("workload: %v", err)
				return
			}
		}
	}()

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	for {
		//socrates:sleep-ok the refresh interval is the point of a top-style tool
		time.Sleep(*interval)
		render(db, *jsonOut, *trace)
		if *once || (!deadline.IsZero() && time.Now().After(deadline)) {
			break
		}
	}
	close(stop)
	<-done
}

func render(db *socrates.DB, jsonOut, withTrace bool) {
	snap := db.MetricsSnapshot()
	if jsonOut {
		fmt.Println(db.Cluster().Metrics.Snapshot().JSON())
		return
	}
	fmt.Printf("\n== socrates-top @ %s ==\n", snap.Taken.Format("15:04:05.000"))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TIER\tMETRIC\tCOUNT\tP50\tP95\tP99\tMAX")
	for _, t := range []struct {
		label string
		tm    socrates.TierMetrics
	}{
		{"compute", snap.Compute},
		{"lz", snap.LandingZone},
		{"xlog", snap.XLOG},
		{"pageserver", snap.PageServer},
		{"xstore", snap.XStore},
	} {
		names := make([]string, 0, len(t.tm.Histograms))
		for n := range t.tm.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h := t.tm.Histograms[n]
			fmt.Fprintf(w, "%s\t%s\t%d\t%v\t%v\t%v\t%v\n",
				t.label, n, h.Count, h.P50, h.P95, h.P99, h.Max)
		}
		cnames := make([]string, 0, len(t.tm.Counters))
		for n := range t.tm.Counters {
			cnames = append(cnames, n)
		}
		sort.Strings(cnames)
		for _, n := range cnames {
			fmt.Fprintf(w, "%s\t%s\t%d\t\t\t\t\n", t.label, n, t.tm.Counters[n])
		}
	}
	w.Flush()
	if withTrace {
		if tr := db.LastTrace(); tr != nil {
			fmt.Printf("-- latest trace (tiers: %v) --\n%s", tr.Tiers(), tr.Format())
		}
	}
}
