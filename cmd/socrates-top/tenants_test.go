package main

import (
	"testing"
	"time"

	"socrates/internal/obs"
)

// TestTenantRows exercises the series→row grouping the per-tenant table
// is built from: counters and histograms with the frontdoor.tenant.
// prefix fold into one row per tenant, the dominant wait class wins, and
// unrelated series are ignored.
func TestTenantRows(t *testing.T) {
	snap := obs.Snapshot{
		Taken: time.Now(),
		Counters: map[string]uint64{
			"frontdoor.tenant.alpha.ops":         120,
			"frontdoor.tenant.alpha.rejects":     7,
			"frontdoor.tenant.alpha.redirects":   2,
			"frontdoor.tenant.alpha.wait.lz":     900,
			"frontdoor.tenant.alpha.wait.commit": 5500,
			"frontdoor.tenant.beta.ops":          3,
			"frontdoor.placement.pulls":          9,
			"compute.commit.batches":             44,
		},
		Histograms: map[string]obs.HistSummary{
			"frontdoor.tenant.alpha.latency": {Count: 120, P50: time.Millisecond, P99: 4 * time.Millisecond},
			"compute.commit.latency":         {Count: 44},
		},
	}
	rows := tenantRows(snap)
	if len(rows) != 2 {
		t.Fatalf("expected rows for alpha and beta, got %d: %v", len(rows), rows)
	}
	a := rows["alpha"]
	if a == nil {
		t.Fatal("no row for alpha")
	}
	if a.ops != 120 || a.rejects != 7 || a.redirects != 2 {
		t.Fatalf("alpha counters wrong: %+v", a)
	}
	if a.topWaitClass != "commit" || a.topWaitNS != 5500 {
		t.Fatalf("alpha top wait should be commit@5500, got %s@%d", a.topWaitClass, a.topWaitNS)
	}
	if a.lat.P99 != 4*time.Millisecond {
		t.Fatalf("alpha latency histogram not attached: %+v", a.lat)
	}
	b := rows["beta"]
	if b == nil || b.ops != 3 || b.topWaitClass != "" {
		t.Fatalf("beta row wrong: %+v", b)
	}
}

// TestTenantRowsEmpty: a snapshot without front-door series renders
// nothing (the remote mode attaches this view to every deployment).
func TestTenantRowsEmpty(t *testing.T) {
	rows := tenantRows(obs.Snapshot{
		Taken:    time.Now(),
		Counters: map[string]uint64{"compute.commit.batches": 1},
	})
	if len(rows) != 0 {
		t.Fatalf("expected no tenant rows, got %v", rows)
	}
}
