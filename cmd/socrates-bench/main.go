// Command socrates-bench regenerates the paper's evaluation tables and
// figures (Tables 1–7, Figure 4) and prints them in the paper's layout.
//
// Usage:
//
//	socrates-bench -exp all
//	socrates-bench -exp table5 -measure 3s -threads 64
//	socrates-bench -exp figure4 -sf 1000
//	socrates-bench -exp obs -json BENCH.json
//
// Absolute numbers are scaled (the substrate is a simulator); the shapes —
// who wins, by what factor, where the crossovers are — are the result.
//
// With -json the per-experiment results are additionally written to the
// given file as a single JSON object keyed by experiment name, so CI and the
// repo's BENCH_*.json seeds can track shapes across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"socrates/internal/experiments"
)

// results accumulates machine-readable rows per experiment for -json.
var results = map[string]any{}

func main() {
	exp := flag.String("exp", "all", "experiment: table1..table7, figure4, cache, obs, mux, waits, commit, router, or all")
	measure := flag.Duration("measure", 2*time.Second, "measurement window per data point")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "warm-up before each measurement")
	sf := flag.Int("sf", 2000, "CDB scale factor (rows per scaled table)")
	threads := flag.Int("threads", 64, "client threads for throughput experiments")
	jsonOut := flag.String("json", "", "write machine-readable results to this file")
	flag.Parse()

	o := experiments.Options{
		Measure: *measure,
		WarmUp:  *warmup,
		SF:      *sf,
		Threads: *threads,
	}

	selected := strings.Split(*exp, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
			if s == "cache" && (name == "table3" || name == "table4") {
				return true
			}
		}
		return false
	}

	ok := true
	run := func(name string, f func() error) {
		if !want(name) {
			return
		}
		fmt.Printf("\n=== %s ===\n", strings.ToUpper(name))
		start := time.Now()
		if err := f(); err != nil {
			ok = false
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			return
		}
		fmt.Printf("(%s in %.1fs)\n", name, time.Since(start).Seconds())
	}

	run("table1", func() error { return runTable1(o) })
	run("table2", func() error { return runTable2(o) })
	run("table3", func() error { return runTable3(o) })
	run("table4", func() error { return runTable4(o) })
	run("table5", func() error { return runTable5(o) })
	run("table6", func() error { return runTable6(o) })
	run("figure4", func() error { return runFigure4(o) })
	run("table7", func() error { return runTable7(o) })
	run("obs", func() error { return runObs(o) })
	run("mux", func() error { return runMux(o) })
	run("waits", func() error { return runWaits(o) })
	run("commit", func() error { return runCommit(o) })
	run("router", func() error { return runRouter(o) })

	if *jsonOut != "" {
		results["generated"] = time.Now().UTC().Format(time.RFC3339)
		results["options"] = map[string]any{
			"measure": o.Measure.String(), "warmup": o.WarmUp.String(),
			"sf": o.SF, "threads": o.Threads,
		}
		blob, err := json.MarshalIndent(results, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(blob, '\n'), 0o644)
		}
		if err != nil {
			ok = false
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
		} else {
			fmt.Printf("\nwrote %s\n", *jsonOut)
		}
	}

	if !ok {
		os.Exit(1)
	}
}

func tw() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func runTable1(o experiments.Options) error {
	rows, err := experiments.Table1(o)
	if err != nil {
		return err
	}
	results["table1"] = rows
	w := tw()
	fmt.Fprintln(w, "Metric\tToday (HADR)\tSocrates")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\n", r.Metric, r.HADR, r.Socrates)
	}
	return w.Flush()
}

func runTable2(o experiments.Options) error {
	h, s, err := experiments.Table2(o)
	if err != nil {
		return err
	}
	results["table2"] = map[string]any{"hadr": h, "socrates": s}
	w := tw()
	fmt.Fprintln(w, "System\tCPU %\tWrite TPS\tRead TPS\tTotal TPS")
	for _, r := range []experiments.ThroughputRow{h, s} {
		fmt.Fprintf(w, "%s\t%.1f\t%.0f\t%.0f\t%.0f\n",
			r.System, r.CPUPct, r.WriteTPS, r.ReadTPS, r.TotalTPS)
	}
	fmt.Fprintf(w, "\nSocrates/HADR total TPS ratio: %.2f (paper: 0.95)\n",
		s.TotalTPS/h.TotalTPS)
	return w.Flush()
}

func runTable3(o experiments.Options) error {
	r, err := experiments.Table3(o)
	if err != nil {
		return err
	}
	results["table3"] = r
	printCacheRow(r, "paper: 52% at 15% cache")
	return nil
}

func runTable4(o experiments.Options) error {
	r, err := experiments.Table4(o)
	if err != nil {
		return err
	}
	results["table4"] = r
	printCacheRow(r, "paper: 32% at ~1% cache")
	return nil
}

func printCacheRow(r experiments.CacheRow, note string) {
	w := tw()
	fmt.Fprintln(w, "Workload\tData pages\tCache pages\tCache ratio\tLocal hit %")
	fmt.Fprintf(w, "%s\t%d\t%d\t%.1f%%\t%.1f%%\n",
		r.Workload, r.DataPages, r.CachePages, r.CacheRatio*100, r.HitPct)
	fmt.Fprintf(w, "(%s)\n", note)
	w.Flush()
}

func runTable5(o experiments.Options) error {
	h, s, err := experiments.Table5(o)
	if err != nil {
		return err
	}
	results["table5"] = map[string]any{"hadr": h, "socrates": s}
	w := tw()
	fmt.Fprintln(w, "System\tLog MB/s\tCPU %")
	fmt.Fprintf(w, "%s\t%.2f\t%.1f\n", h.System, h.LogMBps, h.CPUPct)
	fmt.Fprintf(w, "%s\t%.2f\t%.1f\n", s.System, s.LogMBps, s.CPUPct)
	fmt.Fprintf(w, "\nSocrates/HADR log ratio: %.2f (paper: 1.58)\n", s.LogMBps/h.LogMBps)
	return w.Flush()
}

func runTable6(o experiments.Options) error {
	xio, dd, err := experiments.Table6(o)
	if err != nil {
		return err
	}
	results["table6"] = map[string]any{"xio": xio, "directdrive": dd}
	w := tw()
	fmt.Fprintln(w, "Service\tSTDEV (us)\tMin (us)\tMedian (us)\tMax (us)")
	for _, r := range []experiments.LatencyRow{xio, dd} {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n", r.Service,
			r.Stats.Stdev.Microseconds(), r.Stats.Min.Microseconds(),
			r.Stats.Median.Microseconds(), r.Stats.Max.Microseconds())
	}
	fmt.Fprintf(w, "\nXIO/DD median ratio: %.1f (paper: 4.1)\n",
		float64(xio.Stats.Median)/float64(dd.Stats.Median))
	return w.Flush()
}

func runFigure4(o experiments.Options) error {
	points, err := experiments.Figure4(o, nil)
	if err != nil {
		return err
	}
	results["figure4"] = points
	w := tw()
	fmt.Fprintln(w, "Service\tThreads\tUpdateLite TPS")
	for _, p := range points {
		fmt.Fprintf(w, "%s\t%d\t%.0f\n", p.Service, p.Threads, p.TPS)
	}
	return w.Flush()
}

func runTable7(o experiments.Options) error {
	xio, dd, err := experiments.Table7(o, 0)
	if err != nil {
		return err
	}
	results["table7"] = map[string]any{"xio": xio, "directdrive": dd}
	w := tw()
	fmt.Fprintln(w, "Service\tThreads\tLog MB/s\tCPU %")
	for _, r := range []experiments.EfficiencyRow{xio, dd} {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.1f\n", r.Service, r.Threads, r.LogMBps, r.CPUPct)
	}
	fmt.Fprintf(w, "\nXIO needs %.0fx threads and %.1fx CPU per MB/s (paper: 8x threads, ~3x CPU)\n",
		float64(xio.Threads)/float64(dd.Threads),
		(xio.CPUPct/xio.LogMBps)/(dd.CPUPct/dd.LogMBps))
	return w.Flush()
}

func runObs(o experiments.Options) error {
	r, err := experiments.FlightOverhead(o)
	if err != nil {
		return err
	}
	results["obs"] = r
	w := tw()
	fmt.Fprintln(w, "Flight recorder\tTotal TPS")
	fmt.Fprintf(w, "disabled\t%.0f\n", r.DisabledTPS)
	fmt.Fprintf(w, "enabled\t%.0f\n", r.EnabledTPS)
	fmt.Fprintf(w, "\nOverhead: %.1f%% (target < 5%%); %d events recorded, %d watermarks live\n",
		r.OverheadPct, r.Events, r.Watermarks)
	if r.OverheadPct >= 5 {
		fmt.Fprintln(w, "WARNING: overhead exceeds the 5% budget on this host")
	}
	return w.Flush()
}

func runWaits(o experiments.Options) error {
	r, err := experiments.WaitOverhead(o)
	if err != nil {
		return err
	}
	results["waits"] = r
	w := tw()
	fmt.Fprintln(w, "Wait accounting\tTotal TPS")
	fmt.Fprintf(w, "disabled\t%.0f\n", r.DisabledTPS)
	fmt.Fprintf(w, "enabled\t%.0f\n", r.EnabledTPS)
	fmt.Fprintf(w, "\nOverhead: %.1f%% (target < 3%%); %d wait classes live, dominant: %s\n",
		r.OverheadPct, r.Classes, r.TopClass)
	fmt.Fprintf(w, "Per-request attribution: %.0f%% of commit latency explained (target >= 80%%)\n",
		r.AttributedPct)
	if r.OverheadPct >= 3 {
		fmt.Fprintln(w, "WARNING: overhead exceeds the 3% budget on this host")
	}
	if r.AttributedPct < 80 {
		fmt.Fprintln(w, "WARNING: attribution coverage below the 80% target on this host")
	}
	return w.Flush()
}

func runMux(o experiments.Options) error {
	r, err := experiments.Mux(o)
	if err != nil {
		return err
	}
	results["mux"] = r
	w := tw()
	fmt.Fprintf(w, "GetPage@LSN, %d readers, %d conns, %d us simulated RTT\n",
		r.Readers, r.Conns, r.RTTMicros)
	fmt.Fprintln(w, "Transport\tOps\tTPS")
	fmt.Fprintf(w, "sequential v2\t%d\t%.0f\n", r.SeqOps, r.SeqTPS)
	fmt.Fprintf(w, "mux v3\t%d\t%.0f\n", r.MuxOps, r.MuxTPS)
	fmt.Fprintf(w, "\nmux/sequential speedup: %.1fx (target: >=3x)\n", r.Speedup)
	fmt.Fprintf(w, "coalescer: %d hits / %d misses (%.1f%% hit rate)\n",
		r.CoalesceHits, r.CoalesceMisses, r.CoalesceHitPct)
	if r.Speedup < 3 {
		fmt.Fprintln(w, "WARNING: speedup below the 3x target on this host")
	}
	return w.Flush()
}

func runCommit(o experiments.Options) error {
	r, err := experiments.Commit(o)
	if err != nil {
		return err
	}
	results["commit"] = r
	w := tw()
	fmt.Fprintf(w, "MaxLog commit latency, %d clients, %s landing zone (%d us write), equal simulated RTT\n",
		r.Threads, r.Profile, r.LZWriteUs)
	fmt.Fprintln(w, "Commit path\tQuorum\tOps\tBlocks\tp50 (us)\tp99 (us)")
	fmt.Fprintf(w, "round-trip baseline\t%d/3\t%d\t%d\t%d\t%d\n",
		r.BaseQuorum, r.BaseOps, r.BaseBlocks, r.BaseP50Us, r.BaseP99Us)
	fmt.Fprintf(w, "adaptive group commit\t%d/3\t%d\t%d\t%d\t%d\n",
		r.AdaptQuorum, r.AdaptOps, r.AdaptBlocks, r.AdaptP50Us, r.AdaptP99Us)
	fmt.Fprintf(w, "\ncommit p99 drop: %.1fx (target: >=2x); p50: %.2fx; %d records coalesced\n",
		r.P99Ratio, r.P50Ratio, r.AdaptCoalesced)
	if r.P99Ratio < 2 {
		fmt.Fprintln(w, "WARNING: p99 drop below the 2x target on this host")
	}
	return w.Flush()
}

func runRouter(o experiments.Options) error {
	r, err := experiments.Router(o)
	if err != nil {
		return err
	}
	results["router"] = r
	w := tw()
	fmt.Fprintf(w, "Victim vs noisy neighbor, one pool, %.0f MB/s landing zone, %d B noisy writes\n",
		r.LZMBps, r.NoisyBytes)
	fmt.Fprintln(w, "Arm\tVictim ops\tp50 (us)\tp99 (us)\tNoisy ops\tRejects")
	fmt.Fprintf(w, "quiet\t%d\t%d\t%d\t-\t-\n", r.QuietOps, r.QuietP50Us, r.QuietP99Us)
	fmt.Fprintf(w, "no admission\t%d\t%d\t%d\t%d\t-\n", r.OpenOps, r.OpenP50Us, r.OpenP99Us, r.OpenNoisy)
	fmt.Fprintf(w, "admission %.0f/s\t%d\t%d\t%d\t%d\t%d\n",
		r.NoisyRate, r.AdmitOps, r.AdmitP50Us, r.AdmitP99Us, r.AdmitNoisy, r.AdmitRejects)
	fmt.Fprintf(w, "\nvictim p99 vs quiet: %.2fx flooded (target >= 2x), %.2fx with admission (target <= 1.25x)\n",
		r.OpenRatio, r.AdmitRatio)
	if r.OpenRatio < 2 {
		fmt.Fprintln(w, "WARNING: the flood did not degrade the victim 2x on this host")
	}
	if r.AdmitRatio > 1.25 {
		fmt.Fprintln(w, "WARNING: admission control left more than 1.25x degradation on this host")
	}
	return w.Flush()
}
