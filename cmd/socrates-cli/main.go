// Command socrates-cli is an interactive SQL shell over an embedded
// Socrates deployment — the quickest way to poke at the system:
//
//	$ socrates-cli
//	socrates> CREATE TABLE t (id INT PRIMARY KEY, v TEXT)
//	socrates> INSERT INTO t VALUES (1, 'hello')
//	socrates> SELECT * FROM t
//	id  v
//	1   hello
//
// Beyond SQL it accepts operational dot-commands: .stats, .failover,
// .backup <name>, .restore <name>, .secondaries, .help.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"socrates"
)

func main() {
	secondaries := flag.Int("secondaries", 0, "secondary compute nodes")
	lz := flag.String("lz", "fast", "landing zone: xio | directdrive | fast")
	flag.Parse()

	cfg := socrates.Config{Name: "cli", Secondaries: *secondaries}
	switch strings.ToLower(*lz) {
	case "xio":
		cfg.LZ = socrates.XIO
	case "directdrive", "dd":
		cfg.LZ = socrates.DirectDrive
	default:
		cfg.Fast = true
	}
	db, err := socrates.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "open: %v\n", err)
		os.Exit(1)
	}
	defer db.Close()

	fmt.Println("socrates-cli — type SQL, or .help for commands")
	sess := db.Session()
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("socrates> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == ".exit" || line == ".quit":
			return
		case strings.HasPrefix(line, "."):
			if done := dotCommand(db, line); done {
				return
			}
			continue
		}
		res, err := sess.Exec(line)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		printResult(res)
	}
}

func printResult(res *socrates.Result) {
	if len(res.Columns) == 0 {
		fmt.Printf("ok (%d affected)\n", res.Affected)
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Fprintln(w, strings.Join(parts, "\t"))
	}
	w.Flush()
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

// dotCommand handles operational commands; returns true to exit.
func dotCommand(db *socrates.DB, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".help":
		fmt.Println(`commands:
  .stats              deployment metrics
  .failover           crash the primary and recover
  .backup <name>      constant-time backup
  .restore <name>     query a point-in-time restore (read-only; then discarded)
  .addsecondary <n>   attach a read-scale secondary
  .secondaries        list secondaries
  .exit`)
	case ".stats":
		s := db.Stats()
		fmt.Printf("hardened LSN   %d\nlog bytes      %d\ncache hit rate %.1f%%\nremote fetches %d\npage servers   %d\nsecondaries    %d\nxstore live    %.2f MB\n",
			s.HardenedLSN, s.LogBytes, 100*s.CacheHitRate, s.RemoteFetches,
			s.PageServers, s.Secondaries, s.XStoreLiveMB)
	case ".failover":
		d, err := db.Failover()
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return false
		}
		fmt.Printf("recovered in %v\n", d)
	case ".backup":
		if len(fields) != 2 {
			fmt.Println("usage: .backup <name>")
			return false
		}
		if err := db.Backup(fields[1]); err != nil {
			fmt.Printf("error: %v\n", err)
			return false
		}
		fmt.Printf("backup %q taken at LSN %d\n", fields[1], db.BackupLSN())
	case ".restore":
		if len(fields) != 2 {
			fmt.Println("usage: .restore <name>")
			return false
		}
		r, err := db.PointInTimeRestore(fields[1], 0)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return false
		}
		res, err := r.Exec("SHOW TABLES")
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return false
		}
		fmt.Println("restored image tables:")
		printResult(res)
	case ".addsecondary":
		if len(fields) != 2 {
			fmt.Println("usage: .addsecondary <name>")
			return false
		}
		if err := db.AddSecondary(fields[1]); err != nil {
			fmt.Printf("error: %v\n", err)
			return false
		}
		fmt.Println("attached")
	case ".secondaries":
		for _, n := range db.Secondaries() {
			fmt.Println(n)
		}
	default:
		fmt.Printf("unknown command %s (.help)\n", fields[0])
	}
	return false
}
