// Command socrates-vet runs the Socrates-specific static-analysis suite
// (internal/analysis) over the repo: errlint, lsnlint, locklint, sleeplint,
// atomiclint, ctxlint, and obslint, each encoding one of the paper's
// cross-tier invariants (ctxlint guards the context-first tracing
// discipline; obslint guards the observability plane's instrument-naming
// contract).
//
// Usage:
//
//	socrates-vet [-passes=errlint,lsnlint,...] [patterns...]
//
// Patterns are package directories or "dir/..." subtrees (default "./...").
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"socrates/internal/analysis"
)

func main() {
	passNames := flag.String("passes", "", "comma-separated pass subset (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: socrates-vet [-passes=a,b] [patterns...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	passes := analysis.AllPasses()
	if *passNames != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*passNames, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var selected []analysis.Pass
		for _, p := range passes {
			if want[p.Name()] {
				selected = append(selected, p)
				delete(want, p.Name())
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "socrates-vet: unknown pass %q\n", name)
			os.Exit(2)
		}
		passes = selected
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fatal(err)
	}
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		importPath, err := loader.ImportPathFor(dir)
		if err != nil {
			fatal(err)
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}

	diags := analysis.Run(pkgs, passes)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "socrates-vet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "socrates-vet:", err)
	os.Exit(2)
}
