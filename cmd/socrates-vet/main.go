// Command socrates-vet runs the Socrates-specific static-analysis suite
// (internal/analysis) over the repo. The suite has eight AST passes —
// errlint, lsnlint, locklint, sleeplint, atomiclint, ctxlint, obslint,
// muxlint — and three dataflow-aware passes built on the CFG/dataflow
// core: alloclint (allocation budgets in declared hot paths), deadlocklint
// (cross-package lock-ordering cycles and fabric calls under locks), and
// leaklint (goroutine stop paths, Ticker/Timer/conn lifetimes). Each
// encodes one of the paper's cross-tier invariants.
//
// Usage:
//
//	socrates-vet [-passes=errlint,lsnlint,...] [-json] [-baseline file] [patterns...]
//
// Patterns are package directories or "dir/..." subtrees (default "./...").
//
// -json emits the findings as a JSON array (machine-readable, stable
// schema: file, line, col, pass, message) instead of file:line:col lines.
//
// -baseline loads a JSON findings file (produced by -json) and suppresses
// every finding already recorded there, keyed by (file, pass, message) so
// unrelated line drift does not un-suppress old findings. New findings
// still fail the run; `make vet-baseline` regenerates the file.
//
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"socrates/internal/analysis"
)

// jsonDiag is the stable machine-readable finding schema.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

func main() {
	passNames := flag.String("passes", "", "comma-separated pass subset (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	baseline := flag.String("baseline", "", "JSON findings file; matching findings are suppressed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: socrates-vet [-passes=a,b] [-json] [-baseline file] [patterns...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	passes := analysis.AllPasses()
	if *passNames != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*passNames, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var selected []analysis.Pass
		for _, p := range passes {
			if want[p.Name()] {
				selected = append(selected, p)
				delete(want, p.Name())
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "socrates-vet: unknown pass %q\n", name)
			os.Exit(2)
		}
		passes = selected
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fatal(err)
	}
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		importPath, err := loader.ImportPathFor(dir)
		if err != nil {
			fatal(err)
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}

	diags := analysis.Run(pkgs, passes)
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:    relPath(cwd, d.Pos.Filename),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Pass:    d.Pass,
			Message: d.Message,
		})
	}

	if *baseline != "" {
		known, err := loadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		kept := out[:0]
		suppressed := 0
		for _, d := range out {
			if known[baselineKey(d)] {
				suppressed++
				continue
			}
			kept = append(kept, d)
		}
		out = kept
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "socrates-vet: %d finding(s) suppressed by baseline\n", suppressed)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range out {
			fmt.Printf("%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Col, d.Pass, d.Message)
		}
	}
	if len(out) > 0 {
		fmt.Fprintf(os.Stderr, "socrates-vet: %d finding(s) in %d package(s)\n", len(out), len(pkgs))
		os.Exit(1)
	}
}

// relPath shortens filename to a cwd-relative path when possible, so
// baselines and problem-matcher output are machine-independent.
func relPath(cwd, filename string) string {
	rel, err := filepath.Rel(cwd, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return rel
}

// msgPositions matches file:line positions that some passes (deadlocklint's
// cycle sites) embed in their messages; baselineKey strips them so those
// findings get the same line-drift immunity as everything else.
var msgPositions = regexp.MustCompile(`\.go:\d+`)

// baselineKey identifies a finding without its line/column, so editing
// elsewhere in a file does not un-suppress baselined findings.
func baselineKey(d jsonDiag) string {
	return d.File + "\x00" + d.Pass + "\x00" + msgPositions.ReplaceAllString(d.Message, ".go")
}

// loadBaseline reads a -json findings file into a suppression set.
func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var diags []jsonDiag
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	known := make(map[string]bool, len(diags))
	for _, d := range diags {
		known[baselineKey(d)] = true
	}
	return known, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "socrates-vet:", err)
	os.Exit(2)
}
