package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	findings := []jsonDiag{
		{File: "internal/x/x.go", Line: 10, Col: 3, Pass: "alloclint", Message: "hot path X allocates"},
		{File: "internal/y/y.go", Line: 4, Col: 1, Pass: "leaklint", Message: "ticker leak"},
	}
	data, err := json.Marshal(findings)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	known, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(known) != 2 {
		t.Fatalf("baseline entries: got %d, want 2", len(known))
	}
	// The same finding on a different line is still suppressed: the key
	// deliberately excludes position-within-file.
	moved := findings[0]
	moved.Line = 99
	if !known[baselineKey(moved)] {
		t.Error("line drift un-suppressed a baselined finding")
	}
	// A different message is a new finding.
	changed := findings[0]
	changed.Message = "hot path X allocates differently"
	if known[baselineKey(changed)] {
		t.Error("a new message matched the old baseline entry")
	}
}

func TestBaselineKeyStripsEmbeddedPositions(t *testing.T) {
	a := jsonDiag{File: "a.go", Pass: "deadlocklint",
		Message: "cycle: X→Y at internal/x/x.go:14; Y→X at internal/x/x.go:21"}
	b := a
	b.Message = "cycle: X→Y at internal/x/x.go:15; Y→X at internal/x/x.go:22"
	if baselineKey(a) != baselineKey(b) {
		t.Error("embedded site line numbers defeated line-drift immunity")
	}
	c := a
	c.Message = "cycle: X→Z at internal/x/x.go:14; Z→X at internal/x/x.go:21"
	if baselineKey(a) == baselineKey(c) {
		t.Error("different cycles collapsed to one baseline key")
	}
}

func TestLoadBaselineRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(path); err == nil {
		t.Fatal("garbage baseline loaded without error")
	}
}

func TestRelPath(t *testing.T) {
	if got := relPath("/repo", "/repo/internal/x/x.go"); got != filepath.Join("internal", "x", "x.go") {
		t.Errorf("relPath inside cwd: %q", got)
	}
	if got := relPath("/repo", "/elsewhere/y.go"); got != "/elsewhere/y.go" {
		t.Errorf("relPath outside cwd should stay absolute: %q", got)
	}
}
