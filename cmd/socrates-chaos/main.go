// Command socrates-chaos runs the deterministic torture harness
// (internal/chaos) against a full in-process four-tier cluster: a seeded
// schedule of workload operations and fault injections, judged by a
// durability/consistency oracle.
//
// Usage:
//
//	socrates-chaos [-seed N | -seeds N] [-scenario name] [-steps N]
//	               [-duration d] [-json] [-v]
//
// One seed (-seed) replays one schedule byte-for-byte — paste the seed
// from a failing CI run to reproduce it locally. A matrix (-seeds N)
// sweeps seeds 1..N. Exit status: 0 all runs clean, 1 violations found,
// 2 infrastructure error or bad usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"socrates/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 0, "run exactly this seed (0 = use -seeds sweep)")
	seeds := flag.Int("seeds", 1, "sweep seeds 1..N (ignored when -seed is set)")
	scenario := flag.String("scenario", "mixed", "step-weight profile: "+strings.Join(chaos.Scenarios(), ", "))
	steps := flag.Int("steps", 0, "schedule length per run (0 = default)")
	duration := flag.Duration("duration", 0, "additional wall-clock bound per run (0 = steps only)")
	asJSON := flag.Bool("json", false, "emit one JSON result object per run")
	verbose := flag.Bool("v", false, "log every schedule step")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: socrates-chaos [-seed N | -seeds N] [-scenario name] [-steps N] [-duration d] [-json] [-v]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	var list []int64
	if *seed != 0 {
		list = []int64{*seed}
	} else {
		for s := int64(1); s <= int64(*seeds); s++ {
			list = append(list, s)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	failed := false
	for _, s := range list {
		cfg := chaos.Config{Seed: s, Scenario: *scenario, Steps: *steps, Duration: *duration}
		if *verbose {
			cfg.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "seed %d: "+format+"\n", append([]any{s}, args...)...)
			}
		}
		res, err := chaos.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "socrates-chaos: seed %d: %v\n", s, err)
			os.Exit(2)
		}
		if *asJSON {
			if err := enc.Encode(res); err != nil {
				fmt.Fprintf(os.Stderr, "socrates-chaos: %v\n", err)
				os.Exit(2)
			}
		} else {
			status := "ok"
			if !res.Ok() {
				status = fmt.Sprintf("FAIL (%d violations)", len(res.Violations))
			}
			fmt.Printf("seed %-4d %-9s hash %s  steps %3d  writes %3d (%d acked, %d failed)  reads %3d  faults %2d  probes %2d  failovers %d  %dms  %s\n",
				res.Seed, res.Scenario, res.ScheduleHash, res.Steps, res.Writes,
				res.Acked, res.Failed, res.Reads, res.Faults, res.Probes,
				res.Failovers, res.ElapsedMS, status)
			for _, v := range res.Violations {
				fmt.Printf("  violation: %s\n", v)
			}
		}
		if !res.Ok() {
			failed = true
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "socrates-chaos: violations found — replay any seed above with -seed\n")
		os.Exit(1)
	}
}
